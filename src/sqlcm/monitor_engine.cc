#include "sqlcm/monitor_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/fault.h"
#include "common/string_util.h"
#include "sqlcm/signature.h"
#include "sqlcm/system_views.h"
#include "storage/table_io.h"

namespace sqlcm::cm {

/// Per-thread state of the trace currently being assembled. One frame per
/// thread: a root FireEvent activates it, nested/deferred FireEvents inherit
/// it (same trace id, parent span propagated), and the root finalizes it by
/// offering the buffered spans to the slow-trace table. Durations use the
/// raw steady clock (nanoseconds) rather than common::Clock: the db clock
/// has microsecond resolution and may be mocked, while span self-times need
/// real elapsed time at sub-microsecond grain.
struct TraceFrame {
  const void* engine = nullptr;  // frames never cross engines
  bool active = false;
  bool sampled = false;       // child spans + profiling for this trace
  uint64_t trace_id = 0;      // event seq + 1 (0 = "no trace")
  uint64_t parent_span = 0;   // parent for the next span opened
  uint8_t depth = 0;          // tree depth for the next event span
  /// Rolling clock for gapless attribution: each condition/action window
  /// starts where the previous one ended, so per-rule self-times sum to the
  /// enclosing event span by construction (±5% reconciliation criterion).
  int64_t chain_ns = 0;
  int64_t total_nanos = 0;    // sum of event-span durations in this trace
  std::vector<obs::Span> spans;  // buffered for SlowTraceTable::Offer
  bool overflowed = false;
};

using common::Result;
using common::Row;
using common::Status;
using common::ToLower;
using common::Value;
using common::ValueKind;

namespace {

/// Deferred side-effect events (paper §5, rule evaluation order): actions
/// that raise further events — LAT eviction being the one in-thread case —
/// are queued and processed only after the current rule batch completes.
/// The causing action's span id and depth travel with the eviction so the
/// deferred event reconstructs under its true parent in the trace tree.
struct PendingEviction {
  Lat* lat;
  Row row;
  uint64_t parent_span = 0;
  uint8_t depth = 0;
};

int& RuleDepth() {
  thread_local int depth = 0;
  return depth;
}

TraceFrame& CurrentTraceFrame() {
  // Value-type thread_local: destroyed at thread exit.
  thread_local TraceFrame frame;
  return frame;
}

int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Span-buffer cap per trace (slow-trace exemplars stay bounded even for
/// pathological cascades; overflow is counted in profile.trace_overflows).
constexpr size_t kMaxSpansPerTrace = 2048;

/// Fixed-point scale for the span sampling threshold.
constexpr uint32_t kSpanSampleScale = 1u << 20;

/// Per-thread stack of in-flight query records (statements nest through
/// EXEC). Start and terminal hooks run on the same session thread, so this
/// avoids the global registry when no rule needs cross-query visibility.
std::vector<std::shared_ptr<QueryRecord>>& ThreadQueryStack() {
  // Value-type thread_local: destroyed at thread exit (see above).
  thread_local std::vector<std::shared_ptr<QueryRecord>> stack;
  return stack;
}

std::vector<PendingEviction>& PendingEvictions() {
  // Value-type thread_local: destroyed at thread exit. Safe because the
  // elements hold no references to other thread_local state.
  thread_local std::vector<PendingEviction> pending;
  return pending;
}

using BindingItem = std::vector<std::pair<MonitoredClass, const void*>>;

/// Reusable buffers for unbound-class iteration (paper §5.2): one set per
/// (thread, FireEvent nesting depth), so the iteration path allocates only
/// until each buffer's high-water capacity is reached. Keepalive vectors
/// are cleared by the caller as soon as iteration finishes so shared
/// ownership of query/transaction records is not stretched across events.
struct IterationScratch {
  std::vector<std::shared_ptr<QueryRecord>> query_keepalive;
  std::vector<std::shared_ptr<TransactionRecord>> txn_keepalive;
  std::vector<TimerRecord> timer_objects;
  std::vector<std::pair<BlockEventView, BlockEventView>> pair_objects;
  std::vector<std::vector<BindingItem>> lists;
  std::vector<size_t> idx;

  void Clear() {
    query_keepalive.clear();
    txn_keepalive.clear();
    timer_objects.clear();
    pair_objects.clear();
    lists.clear();
    idx.clear();
  }
};

IterationScratch& IterationScratchAt(size_t depth) {
  thread_local std::vector<std::unique_ptr<IterationScratch>> pool;
  while (pool.size() <= depth) {
    pool.push_back(std::make_unique<IterationScratch>());
  }
  return *pool[depth];
}

/// Per-thread memo for the shared-conjunct walk. One event is in flight per
/// thread at a time for any indexed kind (nested dispatch only happens for
/// kLatEvict, which is never indexed), so a single slot suffices.
PredicateMemo& ThreadPredicateMemo() {
  // Value-type thread_local: destroyed at thread exit.
  thread_local PredicateMemo memo;
  return memo;
}

/// Per-thread reusable EvalContext for hook dispatch: clearing retains the
/// lat_rows capacity, so steady-state hooks allocate nothing. Nested
/// (eviction) dispatch keeps its own stack context and never touches this.
EvalContext& ThreadEvalScratch() {
  // Value-type thread_local: destroyed at thread exit.
  thread_local EvalContext ctx;
  ctx.ResetForEvent();
  return ctx;
}

catalog::ColumnType ColumnTypeForKind(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt: return catalog::ColumnType::kInt;
    case ValueKind::kDouble: return catalog::ColumnType::kDouble;
    case ValueKind::kBool: return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

/// Per-hook instrumentation guard: always counts the call; times it (two
/// clock reads) only while monitoring is active, so the no-rules fast path
/// never touches the clock. Timed hooks feed the LoadGovernor's overhead
/// estimate, and honour the `monitor.hook.slow` chaos fault.
class HookTimer {
 public:
  HookTimer(common::Clock* clock, MonitorMetrics::HookStats* stats,
            bool active, LoadGovernor* governor)
      : clock_(clock), stats_(stats), active_(active), governor_(governor) {
    stats_->calls.Inc();
    if (active_) start_ = clock_->NowMicros();
  }
  ~HookTimer() {
    if (!active_) return;
    if (common::FaultFires(kFaultHookSlow)) {
      clock_->SleepMicros(kFaultHookSlowMicros);
    }
    const int64_t end = clock_->NowMicros();
    stats_->latency.Record(end - start_);
    governor_->RecordHook(end - start_, end);
  }
  HookTimer(const HookTimer&) = delete;
  HookTimer& operator=(const HookTimer&) = delete;

 private:
  common::Clock* clock_;
  MonitorMetrics::HookStats* stats_;
  const bool active_;
  LoadGovernor* governor_;
  int64_t start_ = 0;
};

}  // namespace

MonitorEngine::MonitorEngine(engine::Database* db, Options options)
    : db_(db),
      options_(options),
      mailer_(options.mailer != nullptr ? options.mailer : &default_mailer_),
      launcher_(options.launcher != nullptr ? options.launcher
                                            : &default_launcher_),
      timers_(db->clock(),
              [this](const TimerRecord& timer) { HandleTimerAlarm(timer); }),
      rule_table_(std::make_shared<const RuleTable>()),
      trace_(options.trace_capacity),
      spans_(options.span_capacity),
      slow_traces_(options.slow_trace_k),
      governor_(options.governor) {
  detailed_timing_.store(options.detailed_timing, std::memory_order_relaxed);
  set_span_sampling(options.span_sample_rate);
  governor_.SetLevelListener([this](int old_level, int new_level) {
    ApplyShedLevel(old_level, new_level);
  });
  timers_.set_drift_histogram(&metrics_.timer_drift_micros);
  db_->set_monitor_hooks(this);
  if (options_.register_system_views) {
    views_ = std::make_unique<SystemViews>(this, db_);
  }
  if (options_.start_timer_thread) timers_.Start();
  if (!options_.metrics_export_path.empty() &&
      options_.metrics_export_interval_secs > 0) {
    exporter_thread_ = std::thread([this] { ExporterLoop(); });
  }
  if (options_.async_rule_eval) {
    event_queue_ = std::make_unique<EventQueue>(options_.event_queue_capacity);
    const size_t n = std::max<size_t>(1, options_.monitor_threads);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { MonitorWorkerLoop(); });
    }
  }
}

MonitorEngine::~MonitorEngine() {
  if (!workers_.empty()) {
    // Stop the pipeline first so no worker touches registries or views mid
    // teardown. Shutdown wakes sleepers; workers drain the residue before
    // exiting, so every enqueued event is still evaluated.
    workers_stop_.store(true, std::memory_order_release);
    event_queue_->Shutdown();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }
  if (exporter_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(exporter_mutex_);
      exporter_stop_ = true;
    }
    exporter_cv_.notify_all();
    exporter_thread_.join();
  }
  timers_.Stop();
  db_->set_monitor_hooks(nullptr);
  if (views_ != nullptr) {
    views_.reset();
    // Cached plans may reference the just-dropped view tables.
    db_->plan_cache()->Clear();
  }
}

// ---------------------------------------------------------------------------
// LAT administration
// ---------------------------------------------------------------------------

Status MonitorEngine::DefineLat(LatSpec spec) {
  SQLCM_ASSIGN_OR_RETURN(auto created, Lat::Create(std::move(spec)));
  std::shared_ptr<Lat> lat = std::move(created);
  Lat* raw = lat.get();
  lat->set_evict_callback(
      [this, raw](Row evicted) { HandleEviction(raw, std::move(evicted)); });
  // LATs defined while the governor is already shedding start shed too.
  lat->set_shed_aging(governor_.shed_aging());
  const std::string key = ToLower(raw->name());
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (lats_.count(key) != 0) {
    return Status::AlreadyExists("LAT '" + raw->name() + "' already exists");
  }
  lats_.emplace(key, std::move(lat));
  return Status::OK();
}

Status MonitorEngine::DropLat(std::string_view name) {
  const std::string key = ToLower(name);
  std::shared_ptr<Lat> victim;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = lats_.find(key);
    if (it == lats_.end()) {
      return Status::NotFound("LAT '" + std::string(name) + "' not found");
    }
    for (const auto& rule : rules_) {
      if (std::find(rule->referenced_lats.begin(), rule->referenced_lats.end(),
                    it->second.get()) != rule->referenced_lats.end()) {
        return Status::InvalidArgument("LAT '" + std::string(name) +
                                       "' is referenced by rule '" +
                                       rule->name + "'");
      }
    }
    victim = std::move(it->second);
    lats_.erase(it);
  }
  // In-flight deferred batches may hold rule-table snapshots whose rules
  // predate a RemoveRule that released this LAT: drain them (outside the
  // registry lock) before the last reference dies.
  DrainEventQueue();
  return Status::OK();
}

Lat* MonitorEngine::FindLat(std::string_view name) const {
  const std::string key = ToLower(name);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = lats_.find(key);
  return it == lats_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MonitorEngine::LatNames() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  for (const auto& [_, lat] : lats_) names.push_back(lat->name());
  return names;
}

Status MonitorEngine::PersistLat(std::string_view lat_name,
                                 const std::string& table_name) {
  Lat* lat = FindLat(lat_name);
  if (lat == nullptr) {
    return Status::NotFound("LAT '" + std::string(lat_name) + "' not found");
  }
  std::vector<std::string> cols = lat->column_names();
  std::vector<ValueKind> kinds = lat->column_kinds();
  cols.push_back("persist_ts");
  kinds.push_back(ValueKind::kInt);
  SQLCM_ASSIGN_OR_RETURN(storage::Table * table,
                         EnsureTable(table_name, cols, kinds));
  const int64_t now = db_->clock()->NowMicros();
  return lat->PersistTo(table, now, now);
}

Status MonitorEngine::SeedLat(std::string_view lat_name,
                              const std::string& table_name) {
  Lat* lat = FindLat(lat_name);
  if (lat == nullptr) {
    return Status::NotFound("LAT '" + std::string(lat_name) + "' not found");
  }
  storage::Table* table = db_->catalog()->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + table_name + "' not found");
  }
  return lat->SeedFrom(*table, db_->clock()->NowMicros());
}

Result<std::unique_ptr<storage::Table>> MonitorEngine::MakeLatStagingTable(
    const Lat& lat) const {
  std::vector<std::string> cols = lat.column_names();
  std::vector<ValueKind> kinds = lat.column_kinds();
  cols.push_back("persist_ts");
  kinds.push_back(ValueKind::kInt);
  std::vector<catalog::Column> columns;
  columns.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    columns.push_back({cols[i], ColumnTypeForKind(kinds[i])});
  }
  SQLCM_ASSIGN_OR_RETURN(
      auto schema, catalog::TableSchema::Create(lat.name() + "_checkpoint",
                                                std::move(columns), {}));
  return std::make_unique<storage::Table>(0, std::move(schema));
}

Result<std::unique_ptr<storage::Table>> MonitorEngine::MakeLatStateStagingTable(
    const Lat& lat) const {
  std::vector<std::string> cols = lat.StateColumnNames();
  std::vector<ValueKind> kinds = lat.StateColumnKinds();
  cols.push_back("persist_ts");
  kinds.push_back(ValueKind::kInt);
  std::vector<catalog::Column> columns;
  columns.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    columns.push_back({cols[i], ColumnTypeForKind(kinds[i])});
  }
  SQLCM_ASSIGN_OR_RETURN(
      auto schema, catalog::TableSchema::Create(lat.name() + "_checkpoint",
                                                std::move(columns), {}));
  return std::make_unique<storage::Table>(0, std::move(schema));
}

Status MonitorEngine::CheckpointLat(std::string_view lat_name,
                                    const std::string& file_path) {
  Lat* lat = FindLat(lat_name);
  if (lat == nullptr) {
    return Status::NotFound("LAT '" + std::string(lat_name) + "' not found");
  }
  SQLCM_ASSIGN_OR_RETURN(auto staging, MakeLatStateStagingTable(*lat));
  const int64_t now = db_->clock()->NowMicros();
  // Checkpoint I/O span: standalone (trace_id 0) — checkpoints run from
  // operator/maintenance threads, outside any event dispatch.
  const bool spans_on = spans_.enabled();
  const int64_t cp_start = spans_on ? SteadyNanos() : 0;
  SQLCM_RETURN_IF_ERROR(lat->ExportState(staging.get(), now));
  int retries = 0;
  // Sketch-bearing state records carry extra `#sketch` cells, so they are
  // tagged v3 — a reader without sketch support then rejects the file
  // cleanly instead of mis-indexing the codec cells.
  const int snapshot_version = lat->HasSketchAggs()
                                   ? storage::kSnapshotVersionV3
                                   : storage::kSnapshotVersionV2;
  Status status = storage::WriteTableCsvWithRetry(
      *staging, file_path, options_.persist_attempts,
      options_.persist_backoff_micros, db_->clock(), &retries,
      snapshot_version);
  if (spans_on) {
    const int64_t dur = SteadyNanos() - cp_start;
    obs::Span span;
    span.span_id = NewSpanId();
    span.ref = common::Fnv1a64(lat->lower_name());
    span.start_nanos = cp_start;
    span.duration_nanos = dur;
    span.kind = obs::SpanKind::kCheckpoint;
    spans_.Record(span);
    metrics_.profile_checkpoint_spans.Inc();
    metrics_.profile_checkpoint_nanos.Inc(static_cast<uint64_t>(dur));
  }
  if (retries > 0) {
    metrics_.persist_retries.Inc(static_cast<uint64_t>(retries));
  }
  if (!status.ok()) RecordError(status);
  return status;
}

Status MonitorEngine::RestoreLat(std::string_view lat_name,
                                 const std::string& file_path) {
  Lat* lat = FindLat(lat_name);
  if (lat == nullptr) {
    return Status::NotFound("LAT '" + std::string(lat_name) + "' not found");
  }
  const int64_t now = db_->clock()->NowMicros();
  const auto note_fallback = [&](const storage::SnapshotLoadInfo& info) {
    if (!info.used_fallback) return;
    metrics_.persist_fallbacks.Inc();
    RecordError(Status::IOError("restored LAT '" + std::string(lat_name) +
                                "' from fallback snapshot '" + file_path +
                                ".bak'; primary rejected: " +
                                info.primary_error));
  };
  // Raw state first: load against the state schema and accept only when
  // the file that actually passed verification carries a matching state
  // version — v3 for sketch-bearing LATs, v2 otherwise (the version check
  // disambiguates bodies whose arity happens to coincide).
  const int state_version = lat->HasSketchAggs()
                                ? storage::kSnapshotVersionV3
                                : storage::kSnapshotVersionV2;
  {
    SQLCM_ASSIGN_OR_RETURN(auto staging, MakeLatStateStagingTable(*lat));
    storage::SnapshotLoadInfo info;
    Status status =
        storage::LoadTableCsv(staging.get(), file_path, nullptr, &info);
    if (status.ok() && info.version == state_version) {
      note_fallback(info);
      return lat->ImportState(*staging, now);
    }
  }
  // v1 / legacy headerless CSV: materialized rows, seeded with the
  // documented lossy semantics (Lat::SeedFrom). Sketch-bearing LATs reject
  // this path inside SeedFrom (their state cannot be reconstructed from
  // materialized rows), so a stale/foreign snapshot surfaces as a clean
  // error instead of seeding garbage.
  SQLCM_ASSIGN_OR_RETURN(auto staging, MakeLatStagingTable(*lat));
  storage::SnapshotLoadInfo info;
  Status status =
      storage::LoadTableCsv(staging.get(), file_path, nullptr, &info);
  if (!status.ok()) {
    RecordError(status);
    return status;
  }
  note_fallback(info);
  Status seed = lat->SeedFrom(*staging, now);
  if (!seed.ok()) RecordError(seed);
  return seed;
}

// ---------------------------------------------------------------------------
// Rule administration
// ---------------------------------------------------------------------------

Result<uint64_t> MonitorEngine::AddRule(const RuleSpec& spec) {
  // Compilation resolves LATs/timers through `this` without holding the
  // registry mutex (FindLat/IsTimerName take it internally).
  SQLCM_ASSIGN_OR_RETURN(auto compiled, RuleCompiler::Compile(spec, *this));
  std::shared_ptr<CompiledRule> rule = std::move(compiled);
  rule->breaker.Configure(options_.breaker);
  // Per-rule rate-limit override: >0 replaces the engine-wide cap, <0
  // disables limiting for this rule, 0 keeps the engine default.
  ActionRateLimiter::Options rate_limit = options_.action_rate_limit;
  if (spec.rate_limit_max_actions < 0) {
    rate_limit.max_actions = 0;
  } else if (spec.rate_limit_max_actions > 0) {
    rate_limit.max_actions = spec.rate_limit_max_actions;
    if (spec.rate_limit_window_micros > 0) {
      rate_limit.window_micros = spec.rate_limit_window_micros;
    }
  }
  rule->rate_limiter.Configure(rate_limit);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  rule->id = next_rule_id_++;
  rules_.push_back(rule);
  RebuildRuleTableLocked();
  return rule->id;
}

Status MonitorEngine::RemoveRule(uint64_t rule_id) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i]->id == rule_id) {
      rules_.erase(rules_.begin() + static_cast<long>(i));
      RebuildRuleTableLocked();
      return Status::OK();
    }
  }
  return Status::NotFound("rule #" + std::to_string(rule_id) + " not found");
}

Status MonitorEngine::SetRuleEnabled(uint64_t rule_id, bool enabled) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& rule : rules_) {
    if (rule->id == rule_id) {
      rule->enabled = enabled;
      RebuildRuleTableLocked();
      return Status::OK();
    }
  }
  return Status::NotFound("rule #" + std::to_string(rule_id) + " not found");
}

size_t MonitorEngine::rule_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return rules_.size();
}

Status MonitorEngine::ReinstateRule(uint64_t rule_id) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& rule : rules_) {
    if (rule->id == rule_id) {
      rule->breaker.Reinstate();
      return Status::OK();
    }
  }
  return Status::NotFound("rule #" + std::to_string(rule_id) + " not found");
}

void MonitorEngine::RebuildRuleTableLocked() {
  auto table = std::make_shared<RuleTable>();
  bool any_enabled = false;
  bool track_txns = false;
  bool track_blocking = false;
  bool track_registry = false;
  bool track_concurrency = false;
  for (const auto& rule : rules_) {
    if (!rule->enabled) continue;
    any_enabled = true;
    // With the async pipeline off every rule dispatches inline, preserving
    // the exact pre-pipeline activation order across the whole event.
    if (options_.async_rule_eval && rule->deferrable) {
      table->deferred_by_event[static_cast<size_t>(rule->event.kind)]
          .push_back(rule);
    } else {
      table->by_event[static_cast<size_t>(rule->event.kind)].push_back(rule);
    }
    switch (rule->event.kind) {
      case EventKind::kTransactionBegin:
      case EventKind::kTransactionCommit:
      case EventKind::kTransactionRollback:
        track_txns = true;
        break;
      case EventKind::kQueryBlocked:
      case EventKind::kQueryBlockReleased:
        track_blocking = true;
        break;
      default:
        break;
    }
    for (MonitoredClass cls : rule->iterate_classes) {
      if (cls == MonitoredClass::kTransaction) track_txns = true;
      if (cls == MonitoredClass::kBlocker || cls == MonitoredClass::kBlocked) {
        track_blocking = true;
      }
      if (cls == MonitoredClass::kQuery) track_registry = true;
    }
    if (rule->needs_blocking_probes) track_blocking = true;
    if (rule->needs_concurrency_probe) track_concurrency = true;
  }
  if (options_.predicate_index) {
    for (size_t kind = 0; kind < kNumEventKinds; ++kind) {
      BuildPredicateIndex(table->by_event[kind], /*deferred_lane=*/false,
                          &predicate_stats_, &table->sync_index[kind]);
      BuildPredicateIndex(table->deferred_by_event[kind],
                          /*deferred_lane=*/true, &predicate_stats_,
                          &table->deferred_index[kind]);
      // A rebuild resets walk orders to authoring order; re-apply the
      // learned ranking immediately so CREATE/DROP RULE doesn't regress
      // converged ordering until the next reorder interval.
      if (options_.learned_predicate_order) {
        ReorderPredicateIndex(&table->sync_index[kind]);
        ReorderPredicateIndex(&table->deferred_index[kind]);
      }
    }
  }
  for (size_t kind = 0; kind < kNumEventKinds; ++kind) {
    has_rules_[kind].store(!table->by_event[kind].empty() ||
                               !table->deferred_by_event[kind].empty(),
                           std::memory_order_release);
  }
  rule_table_.store(std::move(table), std::memory_order_release);
  track_transactions_.store(track_txns, std::memory_order_release);
  // Blocking attribution and the concurrency probe both need the global
  // registries.
  track_registry_.store(track_registry || track_blocking || track_concurrency,
                        std::memory_order_release);
  track_concurrency_.store(track_concurrency, std::memory_order_release);
  track_blocking_.store(track_blocking, std::memory_order_release);
  monitoring_active_.store(any_enabled, std::memory_order_release);
}

void MonitorEngine::MaybeReorderPredicates() {
  // Opportunistic: skip (and retry next interval) if a CREATE/DROP RULE
  // holds the registry lock — dispatch must never wait on writers.
  std::unique_lock<std::mutex> lock(registry_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  const std::shared_ptr<const RuleTable> current =
      rule_table_.load(std::memory_order_acquire);
  // Copy-on-write republish: the live table is immutable to readers, so the
  // re-ranked walk order lands as a fresh RCU snapshot. Stats objects are
  // shared (registry-owned), so EWMAs keep accumulating across the swap.
  auto table = std::make_shared<RuleTable>(*current);
  for (size_t kind = 0; kind < kNumEventKinds; ++kind) {
    ReorderPredicateIndex(&table->sync_index[kind]);
    ReorderPredicateIndex(&table->deferred_index[kind]);
  }
  rule_table_.store(std::move(table), std::memory_order_release);
  metrics_.predindex_reorders.Inc();
}

std::vector<MonitorEngine::PredicateStatRow>
MonitorEngine::SnapshotPredicateStats() const {
  const std::shared_ptr<const RuleTable> table =
      rule_table_.load(std::memory_order_acquire);
  std::vector<PredicateStatRow> out;
  for (size_t kind = 0; kind < kNumEventKinds; ++kind) {
    const struct {
      const PredicateIndex* index;
      const char* lane;
    } lanes[] = {{&table->sync_index[kind], "sync"},
                 {&table->deferred_index[kind], "deferred"}};
    for (const auto& lane : lanes) {
      for (const IndexedPredicate& pred : lane.index->preds) {
        PredicateStatRow row;
        row.event = EventKindName(static_cast<EventKind>(kind));
        row.lane = lane.lane;
        row.text = pred.text;
        row.hash = pred.hash;
        row.subscribers = pred.subscribers;
        row.evals = pred.stats->evals.load(std::memory_order_relaxed);
        row.passes = pred.stats->passes.load(std::memory_order_relaxed);
        row.mean_cost_ns = static_cast<double>(
            pred.stats->cost_ewma_ns.load(std::memory_order_relaxed));
        row.rank = pred.stats->rank.load(std::memory_order_relaxed);
        out.push_back(std::move(row));
      }
    }
  }
  return out;
}

std::vector<std::shared_ptr<const CompiledRule>> MonitorEngine::RulesFor(
    EventKind kind) const {
  const std::shared_ptr<const RuleTable> table =
      rule_table_.load(std::memory_order_acquire);
  return table->by_event[static_cast<size_t>(kind)];
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

Status MonitorEngine::CreateTimer(const std::string& name) {
  return timers_.CreateTimer(name);
}

Status MonitorEngine::SetTimer(const std::string& name,
                               double interval_seconds, int64_t repeats) {
  return timers_.Set(name, static_cast<int64_t>(interval_seconds * 1e6),
                     repeats);
}

bool MonitorEngine::IsTimerName(std::string_view name) const {
  return timers_.IsTimerName(name);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t MonitorEngine::active_query_count() const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  return active_queries_.size();
}

std::vector<std::shared_ptr<const CompiledRule>> MonitorEngine::SnapshotRules()
    const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return std::vector<std::shared_ptr<const CompiledRule>>(rules_.begin(),
                                                          rules_.end());
}

std::vector<std::shared_ptr<const Lat>> MonitorEngine::SnapshotLats() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::shared_ptr<const Lat>> out;
  out.reserve(lats_.size());
  for (const auto& [_, lat] : lats_) out.push_back(lat);
  return out;
}

void MonitorEngine::RecordError(const Status& status) {
  metrics_.errors_total.Inc();
  errors_.Record(db_->clock()->NowMicros(), status.ToString());
}

// ---------------------------------------------------------------------------
// Engine hooks
// ---------------------------------------------------------------------------

void MonitorEngine::OnStatementCompiled(engine::CachedPlan* plan) {
  // Signatures are computed regardless of monitoring state (they are cached
  // with the plan for later rule use, §4.2), so this hook bills its
  // already-measured signature cost instead of re-reading the clock.
  metrics_.hooks[static_cast<size_t>(MonitorHook::kStatementCompiled)]
      .calls.Inc();
  // Paper §4.2: signatures are computed during optimization and cached
  // with the plan. signature_micros is what experiment E1 measures against
  // plan->optimize_micros.
  const int64_t start = db_->clock()->NowMicros();
  Signature logical = LogicalQuerySignature(*plan->logical);
  Signature physical = PhysicalPlanSignature(*plan->physical);
  plan->signature_micros = db_->clock()->NowMicros() - start;
  plan->logical_signature = std::move(logical.text);
  plan->physical_signature = std::move(physical.text);
  plan->logical_signature_hash = logical.hash;
  plan->physical_signature_hash = physical.hash;
  plan->signatures_computed = true;
  metrics_.signature_micros.Record(plan->signature_micros);
  metrics_.hooks[static_cast<size_t>(MonitorHook::kStatementCompiled)]
      .latency.Record(plan->signature_micros);
}

void MonitorEngine::OnQueryStart(const engine::QueryInfo& info) {
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kQueryStart)], active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  auto rec = std::make_shared<QueryRecord>();
  rec->id = info.query_id;
  if (info.plan_ref != nullptr && info.plan_ref->signatures_computed) {
    // Pin the plan-cache entry: text and signatures are read in place.
    rec->plan = info.plan_ref;
    rec->logical_hash = info.plan_ref->logical_signature_hash;
    rec->physical_hash = info.plan_ref->physical_signature_hash;
    rec->number_of_instances =
        static_cast<int64_t>(
            info.plan_ref->execution_count.load(std::memory_order_relaxed)) +
        1;
  } else {
    if (info.text != nullptr) rec->text = *info.text;
    if (info.override_logical_signature != nullptr) {
      rec->logical_signature = *info.override_logical_signature;
      rec->logical_hash = HashSignature(rec->logical_signature);
    }
    if (info.override_physical_signature != nullptr) {
      rec->physical_signature = *info.override_physical_signature;
      rec->physical_hash = HashSignature(rec->physical_signature);
    }
    rec->number_of_instances = 1;
  }
  rec->start_micros = info.start_micros;
  rec->estimated_cost = info.estimated_cost;
  rec->query_type = info.statement_type;
  rec->session_id = info.session_id;
  rec->txn_id = info.txn_id;
  if (info.user != nullptr) rec->user = *info.user;
  if (info.application != nullptr) rec->application = *info.application;
  rec->txn = info.txn;

  ThreadQueryStack().push_back(rec);
  if (track_registry_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    if (track_concurrency_.load(std::memory_order_acquire)) {
      for (const auto& [_, other] : active_queries_) {
        if (other->user == rec->user) ++rec->concurrent_user_queries;
      }
    }
    active_queries_[rec->id] = rec;
    txn_query_stack_[rec->txn_id].push_back(rec);
  }
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kQuery, rec.get());
  FireEvent(EventKind::kQueryStart, "", &ctx);
}

void MonitorEngine::FinishQuery(const engine::QueryInfo& info,
                                EventKind terminal_event) {
  if (!MonitoringActive()) return;
  // The record travels on the thread-local stack from the Start hook
  // (statements nest through EXEC, hence a search from the top).
  std::shared_ptr<QueryRecord> rec;
  auto& tl_stack = ThreadQueryStack();
  for (size_t i = tl_stack.size(); i-- > 0;) {
    if (tl_stack[i]->id == info.query_id) {
      rec = std::move(tl_stack[i]);
      tl_stack.erase(tl_stack.begin() + static_cast<long>(i));
      break;
    }
  }
  if (rec == nullptr) rec = FindActiveQueryRecord(info.query_id);
  if (rec == nullptr) return;  // monitoring enabled mid-query
  rec->duration_secs = static_cast<double>(info.duration_micros) / 1e6;

  if (terminal_event == EventKind::kQueryCommit &&
      track_transactions_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = active_txns_.find(rec->txn_id);
    if (it != active_txns_.end()) {
      TransactionRecord& txn_rec = *it->second;
      txn_rec.logical_seq.push_back(rec->logical_hash);
      txn_rec.physical_seq.push_back(rec->physical_hash);
      ++txn_rec.num_queries;
      if (txn_rec.user.empty()) txn_rec.user = rec->user;
      if (txn_rec.application.empty()) txn_rec.application = rec->application;
    }
  }

  rec->txn = nullptr;  // the Transaction pointer must not outlive the query
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kQuery, rec.get());
  FireEvent(terminal_event, "", &ctx, rec);

  if (!track_registry_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(objects_mutex_);
  active_queries_.erase(rec->id);
  auto stack_it = txn_query_stack_.find(rec->txn_id);
  if (stack_it != txn_query_stack_.end()) {
    auto& stack = stack_it->second;
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i] == rec) {
        stack.erase(stack.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  if (track_blocking_.load(std::memory_order_acquire)) {
    // The record stays reachable for blocker attribution: a transaction
    // can hold locks acquired by a finished statement.
    const txn::TxnId txn_id = rec->txn_id;
    txn_last_query_[txn_id] = std::move(rec);
  }
}

void MonitorEngine::OnQueryCommit(const engine::QueryInfo& info) {
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kQueryCommit)], active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  FinishQuery(info, EventKind::kQueryCommit);
}
void MonitorEngine::OnQueryCancel(const engine::QueryInfo& info) {
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kQueryCancel)], active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  FinishQuery(info, EventKind::kQueryCancel);
}
void MonitorEngine::OnQueryRollback(const engine::QueryInfo& info) {
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kQueryRollback)],
      active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  FinishQuery(info, EventKind::kQueryRollback);
}

void MonitorEngine::OnTransactionBegin(uint64_t session_id,
                                       txn::TxnId txn_id) {
  const bool active = MonitoringActive();
  HookTimer timer(db_->clock(),
                  &metrics_.hooks[static_cast<size_t>(MonitorHook::kTxnBegin)],
                  active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  if (!track_transactions_.load(std::memory_order_acquire)) return;
  auto rec = std::make_shared<TransactionRecord>();
  rec->id = txn_id;
  rec->session_id = session_id;
  rec->start_micros = db_->clock()->NowMicros();
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    active_txns_[txn_id] = rec;
  }
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kTransaction, rec.get());
  FireEvent(EventKind::kTransactionBegin, "", &ctx);
}

namespace {

void FinalizeTxnRecord(TransactionRecord* rec, int64_t duration_micros) {
  rec->duration_secs = static_cast<double>(duration_micros) / 1e6;
  Signature logical = TransactionSignature(rec->logical_seq);
  Signature physical = TransactionSignature(rec->physical_seq);
  rec->logical_signature = std::move(logical.text);
  rec->physical_signature = std::move(physical.text);
}

}  // namespace

void MonitorEngine::OnTransactionCommit(uint64_t session_id,
                                        txn::TxnId txn_id,
                                        int64_t duration_micros) {
  (void)session_id;
  const bool active = MonitoringActive();
  HookTimer timer(db_->clock(),
                  &metrics_.hooks[static_cast<size_t>(MonitorHook::kTxnCommit)],
                  active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  std::shared_ptr<TransactionRecord> rec;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = active_txns_.find(txn_id);
    if (it != active_txns_.end()) {
      rec = it->second;
      active_txns_.erase(it);
    }
    txn_query_stack_.erase(txn_id);
    txn_last_query_.erase(txn_id);
    blocker_at_block_time_.erase(txn_id);
  }
  if (rec == nullptr) return;
  FinalizeTxnRecord(rec.get(), duration_micros);
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kTransaction, rec.get());
  FireEvent(EventKind::kTransactionCommit, "", &ctx, nullptr, rec);
}

void MonitorEngine::OnTransactionRollback(uint64_t session_id,
                                          txn::TxnId txn_id,
                                          int64_t duration_micros) {
  (void)session_id;
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kTxnRollback)], active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  std::shared_ptr<TransactionRecord> rec;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = active_txns_.find(txn_id);
    if (it != active_txns_.end()) {
      rec = it->second;
      active_txns_.erase(it);
    }
    txn_query_stack_.erase(txn_id);
    txn_last_query_.erase(txn_id);
  }
  if (rec == nullptr) return;
  FinalizeTxnRecord(rec.get(), duration_micros);
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kTransaction, rec.get());
  FireEvent(EventKind::kTransactionRollback, "", &ctx, nullptr, rec);
}

// ---------------------------------------------------------------------------
// Lock-conflict instrumentation (paper §6.1)
// ---------------------------------------------------------------------------

std::shared_ptr<QueryRecord> MonitorEngine::FindActiveQueryRecord(
    uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto it = active_queries_.find(query_id);
  return it == active_queries_.end() ? nullptr : it->second;
}

std::shared_ptr<QueryRecord> MonitorEngine::CurrentQueryOfTxn(
    txn::TxnId txn_id) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto it = txn_query_stack_.find(txn_id);
  if (it != txn_query_stack_.end() && !it->second.empty()) {
    return it->second.back();
  }
  auto last = txn_last_query_.find(txn_id);
  return last == txn_last_query_.end() ? nullptr : last->second;
}

void MonitorEngine::OnBlocked(txn::TxnId blocked, txn::TxnId blocker,
                              const txn::ResourceId& resource) {
  const bool active = MonitoringActive();
  HookTimer timer(db_->clock(),
                  &metrics_.hooks[static_cast<size_t>(MonitorHook::kBlocked)],
                  active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  if (!track_blocking_.load(std::memory_order_acquire)) return;
  std::shared_ptr<QueryRecord> blocked_rec = CurrentQueryOfTxn(blocked);
  if (blocked_rec == nullptr) return;
  ++blocked_rec->times_blocked;
  std::shared_ptr<QueryRecord> blocker_rec =
      blocker != 0 ? CurrentQueryOfTxn(blocker) : nullptr;
  if (blocker_rec == nullptr) return;
  ++blocker_rec->queries_blocked;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    blocker_at_block_time_[blocked] = blocker_rec;
  }

  BlockEventView blocker_view{blocker_rec.get(), 0, resource.ToString()};
  BlockEventView blocked_view{blocked_rec.get(), 0, blocker_view.resource};
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kBlocker, &blocker_view);
  ctx.Bind(MonitoredClass::kBlocked, &blocked_view);
  FireEvent(EventKind::kQueryBlocked, "", &ctx);
}

void MonitorEngine::OnBlockReleased(txn::TxnId blocked, txn::TxnId blocker,
                                    const txn::ResourceId& resource,
                                    int64_t wait_micros) {
  const bool active = MonitoringActive();
  HookTimer timer(
      db_->clock(),
      &metrics_.hooks[static_cast<size_t>(MonitorHook::kBlockReleased)],
      active, &governor_);
  if (!active) {
    metrics_.fast_path_calls.Inc();
    return;
  }
  if (!track_blocking_.load(std::memory_order_acquire)) return;
  std::shared_ptr<QueryRecord> blocked_rec = CurrentQueryOfTxn(blocked);
  if (blocked_rec == nullptr) return;
  const double wait_secs = static_cast<double>(wait_micros) / 1e6;
  blocked_rec->time_blocked_secs += wait_secs;
  // Prefer the blocker captured at block time (its transaction may have
  // finished since); fall back to a live lookup.
  std::shared_ptr<QueryRecord> blocker_rec;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = blocker_at_block_time_.find(blocked);
    if (it != blocker_at_block_time_.end()) {
      blocker_rec = std::move(it->second);
      blocker_at_block_time_.erase(it);
    }
  }
  if (blocker_rec == nullptr && blocker != 0) {
    blocker_rec = CurrentQueryOfTxn(blocker);
  }
  if (blocker_rec == nullptr) return;

  BlockEventView blocker_view{blocker_rec.get(), wait_secs,
                              resource.ToString()};
  BlockEventView blocked_view{blocked_rec.get(), wait_secs,
                              blocker_view.resource};
  EvalContext& ctx = ThreadEvalScratch();
  ctx.Bind(MonitoredClass::kBlocker, &blocker_view);
  ctx.Bind(MonitoredClass::kBlocked, &blocked_view);
  FireEvent(EventKind::kQueryBlockReleased, "", &ctx);
}

// ---------------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------------

void MonitorEngine::FireEvent(EventKind kind, const std::string& qualifier,
                              EvalContext* base_ctx,
                              std::shared_ptr<QueryRecord> query_keepalive,
                              std::shared_ptr<TransactionRecord> txn_keepalive) {
  if (!has_rules_[static_cast<size_t>(kind)].load(std::memory_order_acquire)) {
    return;
  }
  // RCU load of the compiled dispatch table: the hot path takes no mutex at
  // all (the registry mutex guards only writers, who republish the table).
  const std::shared_ptr<const RuleTable> table =
      rule_table_.load(std::memory_order_acquire);
  const auto& rules = table->by_event[static_cast<size_t>(kind)];
  // Deferral needs a keepalive carrying the bound record's ownership; only
  // terminal events (which always supply one) have deferrable rules.
  const bool defer =
      event_queue_ != nullptr &&
      !table->deferred_by_event[static_cast<size_t>(kind)].empty() &&
      (query_keepalive != nullptr || txn_keepalive != nullptr);
  if (rules.empty() && !defer) return;
  // Governor level 4: shed rule evaluation for a sampled-out share of
  // events (the cheapest remaining lever under overload).
  const uint64_t seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!governor_.AdmitEvent(seq)) {
    metrics_.events_sampled_out.Inc();
    return;
  }
  metrics_.events_processed.Inc();
  const bool tracing = trace_.enabled();
  uint32_t fired_here = 0;

  // One clock read per event; rules reuse it (hot path, Figure 2).
  base_ctx->now_micros = db_->clock()->NowMicros();

  if (defer) {
    // Hand the deferrable rules to the worker pool: the hook's remaining
    // cost for them is this enqueue, regardless of how many are registered.
    DeferredEvent ev;
    ev.kind = kind;
    ev.seq = seq;
    ev.now_micros = base_ctx->now_micros;
    ev.enqueue_nanos = SteadyNanos();
    ev.sampled = spans_.enabled() && SampleTrace(seq);
    ev.query = std::move(query_keepalive);
    ev.txn = std::move(txn_keepalive);
    EnqueueDeferred(std::move(ev));
    if (rules.empty()) return;  // nothing left to evaluate inline
  }

  // Causal span plane: open an event span. The first FireEvent on this
  // thread roots a new trace (id = event seq + 1, sampling decided once per
  // trace); nested/deferred dispatches attach under the inherited parent.
  TraceFrame* frame = nullptr;
  bool trace_root = false;
  uint64_t event_span = 0;
  uint64_t saved_parent = 0;
  uint8_t event_depth = 0;
  int64_t span_start = 0;
  if (spans_.enabled()) {
    frame = &CurrentTraceFrame();
    if (!frame->active || frame->engine != this) {
      frame->engine = this;
      frame->active = true;
      trace_root = true;
      frame->trace_id = seq + 1;  // 0 means "no trace" in span payloads
      frame->sampled = SampleTrace(seq);
      frame->parent_span = 0;
      frame->depth = 0;
      frame->total_nanos = 0;
      frame->spans.clear();
      frame->overflowed = false;
    }
    event_span = NewSpanId();
    saved_parent = frame->parent_span;
    event_depth = frame->depth;
    frame->parent_span = event_span;
    if (frame->depth < 255) ++frame->depth;
    span_start = SteadyNanos();
    frame->chain_ns = span_start;
  } else {
    // Spans were disabled mid-trace (operator or governor): drop the stale
    // frame so the next enablement starts a fresh trace.
    TraceFrame& stale = CurrentTraceFrame();
    if (stale.active && stale.engine == this) {
      stale.active = false;
      stale.spans.clear();
    }
  }
  TraceFrame* profiled = (frame != nullptr && frame->sampled) ? frame : nullptr;

  // Shared-conjunct walk state: one memo per event, fanned out to every
  // indexed rule below (docs/PERFORMANCE.md §"Predicate index").
  const PredicateIndex* index =
      options_.predicate_index &&
              table->sync_index[static_cast<size_t>(kind)].any_indexed
          ? &table->sync_index[static_cast<size_t>(kind)]
          : nullptr;
  PredicateMemo* memo = nullptr;
  if (index != nullptr) {
    memo = &ThreadPredicateMemo();
    memo->BeginEvent(index->preds.size());
  }

  ++RuleDepth();
  for (size_t rule_pos = 0; rule_pos < rules.size(); ++rule_pos) {
    const auto& rule = rules[rule_pos];
    const IndexedRule* entry =
        index != nullptr ? &index->entries[rule_pos] : nullptr;
    if (!rule->event.qualifier.empty() && rule->event.qualifier != qualifier) {
      continue;
    }
    if (rule->iterate_classes.empty()) {
      // No unbound classes: evaluate directly against the shared context
      // (RunRule resets the per-evaluation LAT-row cache itself).
      if (RunRule(*rule, base_ctx, profiled, nullptr, index, entry, memo)) {
        ++fired_here;
        if (memo != nullptr && entry->mutates_lats &&
            rule_pos + 1 < rules.size()) {
          // The fired rule's actions changed LAT state mid-event: memoized
          // LAT-reading conjuncts and the shared row cache no longer match
          // what naive per-rule evaluation would see for the rules still to
          // come (after the last rule the memo is dead — skip).
          memo->InvalidateLatReaders(*index);
          base_ctx->lat_rows.clear();
          metrics_.predindex_invalidations.Inc();
        }
      }
      continue;
    }

    // Unbound-class iteration (paper §5.2): bind every combination of live
    // objects of the classes the event did not bind. Blocker/Blocked are
    // iterated as pairs from the lock-resource graph (§6.1). Buffers come
    // from a per-(thread, depth) scratch pool so this path stops
    // allocating once capacities warm up.
    IterationScratch& scratch =
        IterationScratchAt(static_cast<size_t>(RuleDepth()) - 1);
    scratch.Clear();
    auto& query_keepalive = scratch.query_keepalive;
    auto& txn_keepalive = scratch.txn_keepalive;
    auto& timer_objects = scratch.timer_objects;
    auto& pair_objects = scratch.pair_objects;
    auto& lists = scratch.lists;

    bool want_blocker = false, want_blocked = false;
    for (MonitoredClass cls : rule->iterate_classes) {
      if (cls == MonitoredClass::kBlocker) want_blocker = true;
      if (cls == MonitoredClass::kBlocked) want_blocked = true;
    }
    if (want_blocker || want_blocked) {
      // Waits are measured against the event's already-read timestamp (one
      // clock read per event, Figure 2).
      const int64_t now = base_ctx->now_micros;
      for (const txn::BlockedPair& pair :
           db_->txn_manager()->lock_manager()->SnapshotBlockedPairs()) {
        auto blocked_rec = CurrentQueryOfTxn(pair.blocked_txn);
        auto blocker_rec = CurrentQueryOfTxn(pair.blocker_txn);
        if (blocked_rec == nullptr || blocker_rec == nullptr) continue;
        const double wait_secs =
            static_cast<double>(now - pair.waiting_since_micros) / 1e6;
        query_keepalive.push_back(blocked_rec);
        query_keepalive.push_back(blocker_rec);
        pair_objects.emplace_back(
            BlockEventView{blocker_rec.get(), wait_secs,
                           pair.resource.ToString()},
            BlockEventView{blocked_rec.get(), wait_secs,
                           pair.resource.ToString()});
      }
      std::vector<BindingItem> items;
      for (const auto& [blocker_view, blocked_view] : pair_objects) {
        BindingItem item;
        if (want_blocker) {
          item.emplace_back(MonitoredClass::kBlocker, &blocker_view);
        }
        if (want_blocked) {
          item.emplace_back(MonitoredClass::kBlocked, &blocked_view);
        }
        items.push_back(std::move(item));
      }
      lists.push_back(std::move(items));
    }
    for (MonitoredClass cls : rule->iterate_classes) {
      switch (cls) {
        case MonitoredClass::kQuery: {
          std::vector<BindingItem> items;
          {
            std::lock_guard<std::mutex> lock(objects_mutex_);
            for (const auto& [_, rec] : active_queries_) {
              query_keepalive.push_back(rec);
              items.push_back({{MonitoredClass::kQuery, rec.get()}});
            }
          }
          lists.push_back(std::move(items));
          break;
        }
        case MonitoredClass::kTransaction: {
          std::vector<BindingItem> items;
          {
            std::lock_guard<std::mutex> lock(objects_mutex_);
            for (const auto& [_, rec] : active_txns_) {
              txn_keepalive.push_back(rec);
              items.push_back({{MonitoredClass::kTransaction, rec.get()}});
            }
          }
          lists.push_back(std::move(items));
          break;
        }
        case MonitoredClass::kTimer: {
          timer_objects = timers_.Snapshot(db_->clock()->NowMicros());
          std::vector<BindingItem> items;
          for (const TimerRecord& timer : timer_objects) {
            items.push_back({{MonitoredClass::kTimer, &timer}});
          }
          lists.push_back(std::move(items));
          break;
        }
        default:
          break;  // Blocker/Blocked already handled as pairs
      }
    }

    // Cross product over the lists.
    auto& idx = scratch.idx;
    idx.assign(lists.size(), 0);
    const bool any_empty =
        std::any_of(lists.begin(), lists.end(),
                    [](const auto& l) { return l.empty(); });
    const size_t fired_before = fired_here;
    if (!any_empty) {
      for (;;) {
        EvalContext ctx = *base_ctx;
        for (size_t l = 0; l < lists.size(); ++l) {
          for (const auto& [cls, ptr] : lists[l][idx[l]]) {
            ctx.Bind(cls, ptr);
          }
        }
        if (RunRule(*rule, &ctx, profiled)) ++fired_here;
        size_t l = 0;
        for (; l < lists.size(); ++l) {
          if (++idx[l] < lists[l].size()) break;
          idx[l] = 0;
        }
        if (l == lists.size()) break;
      }
    }
    // Release record ownership promptly (capacity is retained).
    scratch.Clear();
    if (memo != nullptr && fired_here != fired_before &&
        entry->mutates_lats && rule_pos + 1 < rules.size()) {
      // Iterating rules bypass the index, but their fired actions can still
      // mutate LATs that later indexed rules read.
      memo->InvalidateLatReaders(*index);
      base_ctx->lat_rows.clear();
      metrics_.predindex_invalidations.Inc();
    }
  }
  if (frame != nullptr) {
    const int64_t end = SteadyNanos();
    obs::Span span;
    span.trace_id = frame->trace_id;
    span.span_id = event_span;
    span.parent_id = saved_parent;
    span.ref = common::Fnv1a64(qualifier);
    span.start_nanos = span_start;
    span.duration_nanos = end - span_start;
    span.kind = obs::SpanKind::kEvent;
    span.detail = static_cast<uint8_t>(kind);
    span.depth = event_depth;
    EmitSpan(frame, span);
    frame->total_nanos += span.duration_nanos;
    if (frame->sampled) {
      metrics_.profile_events.Inc();
      metrics_.profile_dispatch_nanos.Inc(
          static_cast<uint64_t>(span.duration_nanos));
    }
    frame->parent_span = saved_parent;
    frame->depth = event_depth;
  }
  if (tracing) {
    // The clock read here is trace-gated; the untraced path stays at one
    // read per event.
    trace_.Record(static_cast<uint8_t>(kind), qualifier, fired_here,
                  base_ctx->now_micros,
                  db_->clock()->NowMicros() - base_ctx->now_micros);
  }
  if (--RuleDepth() == 0) {
    // Drain deferred eviction events; each may enqueue more (bounded to
    // guard against pathological rule cycles).
    auto& pending = PendingEvictions();
    size_t processed = 0;
    while (!pending.empty()) {
      metrics_.deferred_events.Inc();
      if (++processed > 100000) {
        RecordError(Status::ResourceExhausted(
            "deferred-event cascade exceeded 100000 events; dropping rest"));
        pending.clear();
        break;
      }
      PendingEviction eviction = std::move(pending.front());
      pending.erase(pending.begin());
      // Re-seat the trace frame under the action span that caused this
      // eviction, so the deferred event parents correctly in the tree.
      if (frame != nullptr && frame->active) {
        frame->parent_span = eviction.parent_span;
        frame->depth = eviction.depth;
      }
      EvalContext ctx;
      ctx.evicted_lat = eviction.lat;
      ctx.evicted_row = &eviction.row;
      FireEvent(EventKind::kLatEvict, eviction.lat->lower_name(), &ctx);
    }
  }
  if (options_.predicate_index && options_.learned_predicate_order &&
      options_.predicate_reorder_interval > 0 &&
      seq % options_.predicate_reorder_interval ==
          options_.predicate_reorder_interval - 1) {
    // Periodic, contention-free (try_lock) re-rank of the shared predicate
    // walk from the stats gathered since the last republish.
    MaybeReorderPredicates();
  }
  if (trace_root) {
    // Root finalization: the whole cascade (including deferred events) has
    // dispatched; offer the assembled trace as a slow-event exemplar.
    slow_traces_.Offer(frame->trace_id, frame->total_nanos, frame->spans);
    if (frame->overflowed) metrics_.profile_trace_overflows.Inc();
    frame->active = false;
    frame->spans.clear();
  }
}

// ---------------------------------------------------------------------------
// Deferred-evaluation pipeline (event_queue.h)
// ---------------------------------------------------------------------------

void MonitorEngine::EnqueueDeferred(DeferredEvent&& ev) {
  switch (options_.queue_full_policy) {
    case QueueFullPolicy::kBlock:
      if (event_queue_->PushBlocking(std::move(ev))) {
        metrics_.queue_enqueued.Inc();
      } else {
        metrics_.queue_dropped.Inc();  // shutdown raced the enqueue
      }
      return;
    case QueueFullPolicy::kDrop:
      if (event_queue_->TryPush(std::move(ev))) {
        metrics_.queue_enqueued.Inc();
      } else {
        metrics_.queue_dropped.Inc();
      }
      return;
    case QueueFullPolicy::kShed: {
      if (event_queue_->TryPush(std::move(ev))) {
        metrics_.queue_enqueued.Inc();
        return;
      }
      // Full: degrade to the governor's sampling ratio — keep 1 in
      // 2^sample_shift events (those block for space, so the kept sample
      // is unbiased), shed the rest.
      const uint64_t mask =
          (uint64_t{1} << options_.governor.sample_shift) - 1;
      if ((ev.seq & mask) == 0) {
        if (event_queue_->PushBlocking(std::move(ev))) {
          metrics_.queue_enqueued.Inc();
        } else {
          metrics_.queue_dropped.Inc();
        }
      } else {
        metrics_.queue_shed.Inc();
        metrics_.events_sampled_out.Inc();
      }
      return;
    }
  }
}

void MonitorEngine::MonitorWorkerLoop() {
  std::vector<DeferredEvent> batch(
      std::max<size_t>(1, options_.drain_batch_size));
  for (;;) {
    batches_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const size_t n = event_queue_->PopBatch(batch.data(), batch.size());
    if (n == 0) {
      batches_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      {
        // Pair the notify with DrainEventQueue's predicate check.
        std::lock_guard<std::mutex> lock(drain_mutex_);
      }
      drain_cv_.notify_all();
      if (workers_stop_.load(std::memory_order_acquire) &&
          event_queue_->ApproxDepth() == 0) {
        return;  // shutdown and residue drained
      }
      event_queue_->WaitNonEmpty(1000);
      continue;
    }
    metrics_.queue_batches.Inc();
    metrics_.queue_batch_events.Inc(n);
    ProcessDeferredBatch(batch.data(), n);
    // Drop record keepalives before signalling the drain barrier.
    for (size_t i = 0; i < n; ++i) batch[i] = DeferredEvent();
    batches_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
    }
    drain_cv_.notify_all();
  }
}

void MonitorEngine::DrainEventQueue() {
  if (event_queue_ == nullptr) return;
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] {
    return event_queue_->ApproxDepth() == 0 &&
           batches_in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void MonitorEngine::ProcessDeferredBatch(DeferredEvent* events, size_t count) {
  // One RCU table load per batch: rule-table dispatch cost is amortized
  // across every event in the batch.
  const std::shared_ptr<const RuleTable> table =
      rule_table_.load(std::memory_order_acquire);
  std::vector<DeferredLatInsert> sink;
  // Resolve the rule list and predicate index once per consecutive run of
  // same-kind events (batches are bursty, so runs are long). Events are NOT
  // re-sorted across kinds: commits and rollbacks feeding one LAT must keep
  // arrival order or FIRST/LAST aggregates would change.
  size_t i = 0;
  while (i < count) {
    const size_t kind = static_cast<size_t>(events[i].kind);
    const size_t run = KindRunLength(events, i, count);
    const auto& rules = table->deferred_by_event[kind];
    if (rules.empty()) {  // rules removed/disabled since enqueue
      i += run;
      continue;
    }
    const PredicateIndex* index =
        options_.predicate_index && table->deferred_index[kind].any_indexed
            ? &table->deferred_index[kind]
            : nullptr;
    for (size_t j = i; j < i + run; ++j) {
      DispatchDeferredEvent(events[j], rules, index, &sink);
    }
    i += run;
  }
  if (sink.empty()) return;

  // Vectorized flush: group buffered upserts by LAT (first-appearance
  // order, items in arrival order) and fold each group through one
  // InsertBatch — one shard latch per (batch, shard). Upsert attribution
  // is recorded at flush granularity: one span-plane sample and one
  // upsert_micros sample per (batch, LAT).
  std::vector<Lat*> lat_order;
  std::unordered_map<Lat*, std::vector<LatBatchItem>> by_lat;
  for (const DeferredLatInsert& ins : sink) {
    auto [it, inserted] = by_lat.try_emplace(ins.lat);
    if (inserted) lat_order.push_back(ins.lat);
    it->second.push_back({ins.record, ins.now_micros});
  }
  const bool profiled = spans_.enabled();
  const bool timed = detailed_timing_.load(std::memory_order_relaxed);
  for (Lat* lat : lat_order) {
    const std::vector<LatBatchItem>& items = by_lat[lat];
    if (profiled || timed) {
      const int64_t start = SteadyNanos();
      lat->InsertBatch(items.data(), items.size());
      const int64_t dur = SteadyNanos() - start;
      if (profiled) {
        lat->stats().upsert_spans.Inc();
        lat->stats().upsert_nanos.Inc(static_cast<uint64_t>(dur));
      }
      if (timed) lat->stats().upsert_micros.Record(dur / 1000);
    } else {
      lat->InsertBatch(items.data(), items.size());
    }
  }
}

void MonitorEngine::DispatchDeferredEvent(
    DeferredEvent& ev,
    const std::vector<std::shared_ptr<const CompiledRule>>& rules,
    const PredicateIndex* index, std::vector<DeferredLatInsert>* lat_sink) {
  EvalContext& ctx = ThreadEvalScratch();
  // Reuse the hook's clock read: deferred rules see the same event
  // timestamp sync evaluation would have.
  ctx.now_micros = ev.now_micros;
  if (ev.query != nullptr) ctx.Bind(MonitoredClass::kQuery, ev.query.get());
  if (ev.txn != nullptr) ctx.Bind(MonitoredClass::kTransaction, ev.txn.get());

  const int64_t drain_start = SteadyNanos();
  metrics_.queue_wait_micros.Record((drain_start - ev.enqueue_nanos) / 1000);

  // Span handling mirrors FireEvent, plus a queue_wait child span carrying
  // the enqueue->drain latency so sqlcm_profile attributes deferred work.
  TraceFrame* frame = nullptr;
  bool trace_root = false;
  uint64_t event_span = 0;
  uint64_t saved_parent = 0;
  uint8_t event_depth = 0;
  if (spans_.enabled()) {
    frame = &CurrentTraceFrame();
    if (!frame->active || frame->engine != this) {
      frame->engine = this;
      frame->active = true;
      trace_root = true;
      frame->trace_id = ev.seq + 1;
      frame->sampled = ev.sampled;  // decided once, at the hook
      frame->parent_span = 0;
      frame->depth = 0;
      frame->total_nanos = 0;
      frame->spans.clear();
      frame->overflowed = false;
    }
    event_span = NewSpanId();
    saved_parent = frame->parent_span;
    event_depth = frame->depth;
    frame->parent_span = event_span;
    if (frame->depth < 255) ++frame->depth;
    frame->chain_ns = drain_start;

    obs::Span wait;
    wait.trace_id = frame->trace_id;
    wait.span_id = NewSpanId();
    wait.parent_id = event_span;
    wait.ref = common::Fnv1a64("");
    wait.start_nanos = ev.enqueue_nanos;
    wait.duration_nanos = drain_start - ev.enqueue_nanos;
    wait.kind = obs::SpanKind::kQueueWait;
    wait.detail = static_cast<uint8_t>(ev.kind);
    wait.depth = frame->depth;
    EmitSpan(frame, wait);
    if (frame->sampled) {
      metrics_.profile_queue_spans.Inc();
      metrics_.profile_queue_nanos.Inc(
          static_cast<uint64_t>(wait.duration_nanos));
    }
  } else {
    TraceFrame& stale = CurrentTraceFrame();
    if (stale.active && stale.engine == this) {
      stale.active = false;
      stale.spans.clear();
    }
  }
  TraceFrame* profiled = (frame != nullptr && frame->sampled) ? frame : nullptr;

  uint32_t fired_here = 0;
  PredicateMemo* memo = nullptr;
  if (index != nullptr) {
    memo = &ThreadPredicateMemo();
    memo->BeginEvent(index->preds.size());
  }
  ++RuleDepth();
  for (size_t rule_pos = 0; rule_pos < rules.size(); ++rule_pos) {
    const auto& rule = rules[rule_pos];
    const IndexedRule* entry =
        index != nullptr ? &index->entries[rule_pos] : nullptr;
    // Terminal events carry no qualifier; deferrable rules never iterate
    // unbound classes (classification guarantees it).
    if (!rule->event.qualifier.empty()) continue;
    if (RunRule(*rule, &ctx, profiled, lat_sink, index, entry, memo)) {
      ++fired_here;
      if (memo != nullptr && entry->mutates_lats &&
          rule_pos + 1 < rules.size()) {
        // Deferred inserts buffer in lat_sink, so only RESET actions mutate
        // LAT state mid-batch (mutates_lats reflects that for this lane).
        memo->InvalidateLatReaders(*index);
        ctx.lat_rows.clear();
        metrics_.predindex_invalidations.Inc();
      }
    }
  }
  if (frame != nullptr) {
    const int64_t end = SteadyNanos();
    obs::Span span;
    span.trace_id = frame->trace_id;
    span.span_id = event_span;
    span.parent_id = saved_parent;
    span.ref = common::Fnv1a64("");
    span.start_nanos = drain_start;
    span.duration_nanos = end - drain_start;
    span.kind = obs::SpanKind::kEvent;
    span.detail = static_cast<uint8_t>(ev.kind);
    span.depth = event_depth;
    EmitSpan(frame, span);
    frame->total_nanos += span.duration_nanos;
    if (frame->sampled) {
      metrics_.profile_events.Inc();
      metrics_.profile_dispatch_nanos.Inc(
          static_cast<uint64_t>(span.duration_nanos));
    }
    frame->parent_span = saved_parent;
    frame->depth = event_depth;
  }
  if (trace_.enabled()) {
    // Duration here is end-to-end (enqueue wait included) by design: the
    // trace ring answers "when did this event's effects land".
    trace_.Record(static_cast<uint8_t>(ev.kind), "", fired_here,
                  ev.now_micros, db_->clock()->NowMicros() - ev.now_micros);
  }
  if (--RuleDepth() == 0) {
    // Deferred rules buffer their LAT inserts, so evictions normally pend
    // only at flush time (RuleDepth 0 -> immediate dispatch); drain any
    // stragglers for parity with FireEvent.
    auto& pending = PendingEvictions();
    size_t processed = 0;
    while (!pending.empty()) {
      metrics_.deferred_events.Inc();
      if (++processed > 100000) {
        RecordError(Status::ResourceExhausted(
            "deferred-event cascade exceeded 100000 events; dropping rest"));
        pending.clear();
        break;
      }
      PendingEviction eviction = std::move(pending.front());
      pending.erase(pending.begin());
      if (frame != nullptr && frame->active) {
        frame->parent_span = eviction.parent_span;
        frame->depth = eviction.depth;
      }
      EvalContext evict_ctx;
      evict_ctx.evicted_lat = eviction.lat;
      evict_ctx.evicted_row = &eviction.row;
      FireEvent(EventKind::kLatEvict, eviction.lat->lower_name(), &evict_ctx);
    }
  }
  if (trace_root) {
    slow_traces_.Offer(frame->trace_id, frame->total_nanos, frame->spans);
    if (frame->overflowed) metrics_.profile_trace_overflows.Inc();
    frame->active = false;
    frame->spans.clear();
  }
}

bool MonitorEngine::RunRule(const CompiledRule& rule, EvalContext* ctx,
                            TraceFrame* frame,
                            std::vector<DeferredLatInsert>* lat_sink,
                            const PredicateIndex* index,
                            const IndexedRule* entry, PredicateMemo* memo) {
  // Quarantine gate: a tripped breaker takes the rule out of dispatch until
  // its cooldown admits a half-open probe (or ReinstateRule intervenes).
  if (!rule.breaker.Allow(ctx->now_micros)) {
    metrics_.breaker_skips.Inc();
    return false;
  }
  rule.stats.evaluations.Inc();
  bool cond_error = false;
  bool cond_pass = true;
  bool walked = false;
  if (index != nullptr && entry != nullptr && entry->indexed &&
      memo != nullptr) {
    // Shared-conjunct walk: each distinct predicate evaluates once per
    // event, memoized for every subscribed rule. Authoring order is kept
    // exact unless learned ordering is on (then a NULL conjunct may
    // short-circuit before an erroring one — strictly fewer errors, same
    // firing decisions).
    PredWalkCounters counters;
    const IndexVerdict verdict = EvalIndexedCondition(
        *index, *entry, /*strict_order=*/!options_.learned_predicate_order,
        ctx, memo, &counters);
    metrics_.predindex_evals.Inc(counters.evals);
    metrics_.predindex_memo_hits.Inc(counters.memo_hits);
    if (verdict == IndexVerdict::kError) {
      // A conjunct errored: replay this rule naively so the error text,
      // per-rule stats, and breaker accounting match index-off evaluation
      // exactly (the walk result is discarded).
      metrics_.predindex_fallbacks.Inc();
    } else {
      walked = true;
      cond_pass = verdict == IndexVerdict::kFire;
    }
  }
  if (walked) {
    // Condition fully decided by the shared walk above.
  } else if (rule.use_fast_condition) {
    cond_pass = EvalFastAtoms(rule.fast_atoms, *ctx);
  } else if (rule.condition != nullptr) {
    ctx->lat_rows.clear();
    ctx->lat_row_missing = false;
    auto pass = rule.condition->EvalCondition(ctx);
    if (!pass.ok()) {
      rule.stats.errors.Inc();
      RecordError(pass.status());
      cond_error = true;
      cond_pass = false;
    } else {
      cond_pass = *pass;
    }
  }
  if (frame != nullptr) {
    // Close the condition window against the trace's rolling clock (the
    // window opened where the previous rule's — or the event span's — read
    // ended, so nothing in the dispatch loop escapes attribution).
    const int64_t now = SteadyNanos();
    const int64_t dur = now - frame->chain_ns;
    obs::Span span;
    span.trace_id = frame->trace_id;
    span.span_id = NewSpanId();
    span.parent_id = frame->parent_span;
    span.ref = rule.id;
    span.start_nanos = frame->chain_ns;
    span.duration_nanos = dur;
    span.kind = obs::SpanKind::kCondition;
    span.depth = frame->depth;
    EmitSpan(frame, span);
    rule.stats.profiled_evals.Inc();
    rule.stats.condition_nanos.Inc(static_cast<uint64_t>(dur));
    frame->chain_ns = now;
  }
  if (cond_error) {
    NoteRuleFailure(rule, ctx->now_micros);
    return false;
  }
  if (!cond_pass) {
    rule.stats.condition_false.Inc();
    rule.breaker.OnSuccess(ctx->now_micros);
    return false;
  }
  metrics_.rules_fired.Inc();
  rule.stats.fires.Inc();
  const bool timed = detailed_timing_.load(std::memory_order_relaxed);
  const int64_t action_start =
      (timed && frame == nullptr) ? db_->clock()->NowMicros() : 0;
  bool any_action_failed = false;
  int64_t actions_nanos = 0;
  for (const CompiledAction& action : rule.actions) {
    // Alert-storm cap: externally visible actions (mail, persisted rows)
    // pass the per-rule trailing-window limiter; a suppressed action is
    // skipped without counting as a failure (the condition legitimately
    // fired — only the side effect is shed).
    if ((action.kind == ActionKind::kSendMail ||
         action.kind == ActionKind::kPersist) &&
        !rule.rate_limiter.Admit(ctx->now_micros)) {
      rule.stats.actions_suppressed.Inc();
      metrics_.actions_suppressed.Inc();
      continue;
    }
    uint64_t action_span = 0;
    uint64_t action_parent = 0;
    if (frame != nullptr) {
      // Allocate the action span id up front: LAT-upsert child spans and
      // any eviction events the upsert defers parent onto it.
      action_span = NewSpanId();
      action_parent = frame->parent_span;
      frame->parent_span = action_span;
    }
    Status status = ExecuteAction(action, ctx, frame, lat_sink);
    if (frame != nullptr) {
      const int64_t now = SteadyNanos();
      const int64_t dur = now - frame->chain_ns;
      obs::Span span;
      span.trace_id = frame->trace_id;
      span.span_id = action_span;
      span.parent_id = action_parent;
      span.ref = rule.id;
      span.start_nanos = frame->chain_ns;
      span.duration_nanos = dur;
      span.kind = obs::SpanKind::kAction;
      span.detail = static_cast<uint8_t>(action.kind);
      span.depth = frame->depth;
      EmitSpan(frame, span);
      const auto k = static_cast<size_t>(action.kind);
      metrics_.action_kind_spans[k].Inc();
      metrics_.action_kind_nanos[k].Inc(static_cast<uint64_t>(dur));
      rule.stats.action_nanos.Inc(static_cast<uint64_t>(dur));
      actions_nanos += dur;
      frame->chain_ns = now;
      frame->parent_span = action_parent;
    }
    if (!status.ok()) {
      rule.stats.errors.Inc();
      RecordError(status);
      any_action_failed = true;
    }
  }
  if (timed) {
    // When profiled, the span windows already measured the actions — reuse
    // them instead of reading the db clock twice more.
    rule.stats.action_micros.Record(
        frame != nullptr ? actions_nanos / 1000
                         : db_->clock()->NowMicros() - action_start);
  }
  if (any_action_failed) {
    NoteRuleFailure(rule, ctx->now_micros);
  } else {
    rule.breaker.OnSuccess(ctx->now_micros);
  }
  return true;
}

void MonitorEngine::NoteRuleFailure(const CompiledRule& rule,
                                    int64_t now_micros) {
  if (rule.breaker.OnFailure(now_micros)) {
    metrics_.breaker_trips.Inc();
    RecordError(Status::ResourceExhausted(
        "rule '" + rule.name +
        "' quarantined: circuit breaker tripped open after repeated "
        "failures"));
  }
}

void MonitorEngine::ApplyShedLevel(int old_level, int new_level) {
  using L = LoadGovernor;
  metrics_.governor_level.Set(new_level);
  if (new_level > old_level) {
    metrics_.governor_raises.Inc();
  } else {
    metrics_.governor_drops.Inc();
  }
  // Detailed timing (level 1): remember the configured value across the
  // shed so recovery restores what the operator chose.
  if (new_level >= L::kLevelNoDetailedTiming &&
      old_level < L::kLevelNoDetailedTiming) {
    timing_before_shed_.store(detailed_timing(), std::memory_order_relaxed);
    set_detailed_timing(false);
  } else if (new_level < L::kLevelNoDetailedTiming &&
             old_level >= L::kLevelNoDetailedTiming) {
    set_detailed_timing(timing_before_shed_.load(std::memory_order_relaxed));
  }
  // Event trace + span plane (level 2): both are diagnostics rings fed on
  // the dispatch path, so they shed (and recover) together.
  if (new_level >= L::kLevelNoTrace && old_level < L::kLevelNoTrace) {
    trace_before_shed_.store(trace_.enabled(), std::memory_order_relaxed);
    trace_.set_enabled(false);
    spans_before_shed_.store(spans_.enabled(), std::memory_order_relaxed);
    spans_.set_enabled(false);
  } else if (new_level < L::kLevelNoTrace && old_level >= L::kLevelNoTrace) {
    trace_.set_enabled(trace_before_shed_.load(std::memory_order_relaxed));
    spans_.set_enabled(spans_before_shed_.load(std::memory_order_relaxed));
  }
  // LAT aging maintenance (level 3).
  const bool shed_aging = new_level >= L::kLevelShedAging;
  if (shed_aging != (old_level >= L::kLevelShedAging)) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& [_, lat] : lats_) lat->set_shed_aging(shed_aging);
  }
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

Result<storage::Table*> MonitorEngine::EnsureTable(
    const std::string& table_name, const std::vector<std::string>& col_names,
    const std::vector<ValueKind>& kinds) {
  storage::Table* table = db_->catalog()->GetTable(table_name);
  if (table != nullptr) return table;
  std::vector<catalog::Column> columns;
  for (size_t i = 0; i < col_names.size(); ++i) {
    columns.push_back({col_names[i], ColumnTypeForKind(kinds[i])});
  }
  SQLCM_ASSIGN_OR_RETURN(
      auto schema,
      catalog::TableSchema::Create(table_name, std::move(columns), {}));
  auto created = db_->catalog()->CreateTable(std::move(schema));
  if (!created.ok()) {
    // Lost a creation race; the table exists now.
    table = db_->catalog()->GetTable(table_name);
    if (table != nullptr) return table;
    return created.status();
  }
  return *created;
}

Status MonitorEngine::PersistRowToTable(
    const std::string& table_name, const std::vector<std::string>& col_names,
    const std::vector<ValueKind>& kinds, Row row) {
  SQLCM_ASSIGN_OR_RETURN(storage::Table * table,
                         EnsureTable(table_name, col_names, kinds));
  return table->Insert(std::move(row)).status();
}

Status MonitorEngine::ExecuteAction(const CompiledAction& action,
                                    EvalContext* ctx, TraceFrame* frame,
                                    std::vector<DeferredLatInsert>* lat_sink) {
  switch (action.kind) {
    case ActionKind::kInsert: {
      const void* record = ctx->Bound(action.lat->spec().object_class);
      if (record == nullptr) {
        return Status::Internal("Insert: no in-context object of class " +
                                std::string(MonitoredClassName(
                                    action.lat->spec().object_class)));
      }
      if (lat_sink != nullptr) {
        // Deferred-batch processing: buffer the upsert; the batch flush
        // performs one vectorized Lat::InsertBatch per LAT (one shard
        // latch per batch+shard). Per-upsert spans/timing are recorded at
        // flush granularity instead (ProcessDeferredBatch).
        lat_sink->push_back({action.lat, record, ctx->now_micros});
        return Status::OK();
      }
      if (frame != nullptr) {
        // Profiled path: a LAT-upsert child span under the action span,
        // plus nanosecond attribution to the LAT itself. Evictions the
        // upsert defers capture the action span as their parent.
        const int64_t start = SteadyNanos();
        action.lat->Insert(record, ctx->now_micros);
        const int64_t dur = SteadyNanos() - start;
        obs::Span span;
        span.trace_id = frame->trace_id;
        span.span_id = NewSpanId();
        span.parent_id = frame->parent_span;
        span.ref = common::Fnv1a64(action.lat->lower_name());
        span.start_nanos = start;
        span.duration_nanos = dur;
        span.kind = obs::SpanKind::kLatUpsert;
        span.depth = frame->depth;
        EmitSpan(frame, span);
        action.lat->stats().upsert_spans.Inc();
        action.lat->stats().upsert_nanos.Inc(static_cast<uint64_t>(dur));
        if (detailed_timing_.load(std::memory_order_relaxed)) {
          action.lat->stats().upsert_micros.Record(dur / 1000);
        }
      } else if (detailed_timing_.load(std::memory_order_relaxed)) {
        const int64_t start = db_->clock()->NowMicros();
        action.lat->Insert(record, ctx->now_micros);
        action.lat->stats().upsert_micros.Record(db_->clock()->NowMicros() -
                                                 start);
      } else {
        action.lat->Insert(record, ctx->now_micros);
      }
      return Status::OK();
    }
    case ActionKind::kReset:
      action.lat->Reset();
      return Status::OK();
    case ActionKind::kPersist: {
      if (action.lat_source) {
        std::vector<std::string> cols = action.lat->column_names();
        std::vector<ValueKind> kinds = action.lat->column_kinds();
        cols.push_back("persist_ts");
        kinds.push_back(ValueKind::kInt);
        SQLCM_ASSIGN_OR_RETURN(storage::Table * table,
                               EnsureTable(action.table_name, cols, kinds));
        return action.lat->PersistTo(table, ctx->now_micros, ctx->now_micros);
      }
      if (action.evicted_source) {
        if (ctx->evicted_row == nullptr) {
          return Status::Internal("Evicted.Persist without evicted row");
        }
        return PersistRowToTable(action.table_name,
                                 action.lat->column_names(),
                                 action.lat->column_kinds(),
                                 *ctx->evicted_row);
      }
      const void* record = ctx->Bound(action.source_class);
      if (record == nullptr) {
        return Status::Internal(
            std::string("Persist: no in-context object of class ") +
            MonitoredClassName(action.source_class));
      }
      const ObjectSchema& schema = ObjectSchema::Get();
      Row row;
      std::vector<ValueKind> kinds;
      row.reserve(action.attr_indexes.size());
      for (int attr : action.attr_indexes) {
        const AttributeDef& def =
            schema.attributes(action.source_class)[static_cast<size_t>(attr)];
        row.push_back(def.getter(record));
        kinds.push_back(def.kind);
      }
      return PersistRowToTable(action.table_name, action.attr_names, kinds,
                               std::move(row));
    }
    case ActionKind::kSendMail:
      return mailer_->SendMail(SubstituteTemplate(action.text, ctx),
                               action.address);
    case ActionKind::kRunExternal:
      return launcher_->RunExternal(SubstituteTemplate(action.text, ctx));
    case ActionKind::kCancel: {
      const void* record = ctx->Bound(action.source_class);
      if (record == nullptr) {
        return Status::Internal("Cancel: no in-context object");
      }
      const QueryRecord* query =
          action.source_class == MonitoredClass::kQuery
              ? static_cast<const QueryRecord*>(record)
              : static_cast<const BlockEventView*>(record)->query;
      // Resolve through the transaction manager rather than the raw
      // pointer: the transaction may have finished since the record was
      // assembled.
      txn::Transaction* txn = db_->txn_manager()->FindActive(query->txn_id);
      if (txn != nullptr) txn->Cancel();
      return Status::OK();
    }
    case ActionKind::kSetTimer: {
      std::string name = action.timer_name;
      if (name.empty()) {
        const void* record = ctx->Bound(MonitoredClass::kTimer);
        if (record == nullptr) {
          return Status::Internal("Set: no in-context timer");
        }
        name = static_cast<const TimerRecord*>(record)->name;
      }
      return timers_.Set(name,
                         static_cast<int64_t>(action.timer_seconds * 1e6),
                         action.timer_repeats);
    }
  }
  return Status::Internal("unhandled action kind");
}

std::string MonitorEngine::SubstituteTemplate(const std::string& text,
                                              EvalContext* ctx) {
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t open = text.find('{', pos);
    if (open == std::string::npos) {
      out.append(text, pos, std::string::npos);
      break;
    }
    out.append(text, pos, open - pos);
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      out.append(text, open, std::string::npos);
      break;
    }
    const std::string ref = text.substr(open + 1, close - open - 1);
    pos = close + 1;
    const size_t dot = ref.find('.');
    bool substituted = false;
    if (dot != std::string::npos) {
      const std::string qualifier = ref.substr(0, dot);
      const std::string name = ref.substr(dot + 1);
      auto cls = ParseMonitoredClassName(qualifier);
      if (cls.ok() && *cls != MonitoredClass::kEvicted) {
        const void* record = ctx->Bound(*cls);
        const int attr = ObjectSchema::Get().FindAttribute(*cls, name);
        if (record != nullptr && attr >= 0) {
          out += ObjectSchema::Get()
                     .GetValue(*cls, attr, record)
                     .ToDisplayString();
          substituted = true;
        }
      } else if (cls.ok() && ctx->evicted_lat != nullptr &&
                 ctx->evicted_row != nullptr) {
        const int col = ctx->evicted_lat->FindColumn(name);
        if (col >= 0) {
          out += (*ctx->evicted_row)[static_cast<size_t>(col)]
                     .ToDisplayString();
          substituted = true;
        }
      } else {
        Lat* lat = FindLat(qualifier);
        if (lat != nullptr) {
          const int col = lat->FindColumn(name);
          const void* record = ctx->Bound(lat->spec().object_class);
          Row row;
          if (col >= 0 && record != nullptr &&
              lat->LookupForObject(record, ctx->now_micros, &row)) {
            out += row[static_cast<size_t>(col)].ToDisplayString();
            substituted = true;
          }
        }
      }
    }
    if (!substituted) {
      out += "{" + ref + "}";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Deferred events
// ---------------------------------------------------------------------------

void MonitorEngine::HandleEviction(Lat* lat, Row evicted) {
  if (RuleDepth() > 0) {
    PendingEviction eviction{lat, std::move(evicted)};
    if (spans_.enabled()) {
      const TraceFrame& frame = CurrentTraceFrame();
      if (frame.active && frame.engine == this) {
        eviction.parent_span = frame.parent_span;
        eviction.depth = frame.depth;
      }
    }
    PendingEvictions().push_back(std::move(eviction));
    return;
  }
  EvalContext ctx;
  ctx.evicted_lat = lat;
  ctx.evicted_row = &evicted;
  FireEvent(EventKind::kLatEvict, lat->lower_name(), &ctx);
}

void MonitorEngine::HandleTimerAlarm(const TimerRecord& timer) {
  EvalContext ctx;
  ctx.Bind(MonitoredClass::kTimer, &timer);
  FireEvent(EventKind::kTimerAlarm, ToLower(timer.name), &ctx);
}

// ---------------------------------------------------------------------------
// Causal span plane & metrics exposition
// ---------------------------------------------------------------------------

void MonitorEngine::set_span_sampling(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  span_sample_threshold_.store(
      static_cast<uint32_t>(rate * kSpanSampleScale),
      std::memory_order_relaxed);
}

double MonitorEngine::span_sample_rate() const {
  return static_cast<double>(
             span_sample_threshold_.load(std::memory_order_relaxed)) /
         kSpanSampleScale;
}

bool MonitorEngine::SampleTrace(uint64_t seq) const {
  const uint32_t threshold =
      span_sample_threshold_.load(std::memory_order_relaxed);
  if (threshold >= kSpanSampleScale) return true;
  if (threshold == 0) return false;
  // Cheap multiplicative hash decorrelates the decision from event-arrival
  // patterns (plain `seq % N` would alias with periodic workloads).
  const uint64_t h = seq * 0x9E3779B97F4A7C15ull;
  return (h >> 44) < threshold;
}

void MonitorEngine::EmitSpan(TraceFrame* frame, const obs::Span& span) {
  spans_.Record(span);
  if (frame->spans.size() < kMaxSpansPerTrace) {
    frame->spans.push_back(span);
  } else {
    frame->overflowed = true;
  }
}

Status MonitorEngine::ExportMetricsNow(const std::string& path) {
  Status status =
      storage::WriteFileAtomic(path, metrics_.registry.DumpPrometheus());
  if (status.ok()) {
    metrics_.metrics_exports.Inc();
  } else {
    RecordError(status);
  }
  return status;
}

void MonitorEngine::ExporterLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.metrics_export_interval_secs);
  std::unique_lock<std::mutex> lock(exporter_mutex_);
  while (!exporter_stop_) {
    exporter_cv_.wait_for(lock, interval, [this] { return exporter_stop_; });
    if (exporter_stop_) break;
    lock.unlock();
    (void)ExportMetricsNow(options_.metrics_export_path);
    lock.lock();
  }
}

}  // namespace sqlcm::cm
