// MonitorEngine: the SQLCM continuous-monitoring engine (paper Figure 1).
//
// Implements the engine's instrumentation hooks (engine::MonitorHooks) and
// the lock manager's conflict observer, assembles monitored objects from
// probes, dispatches ECA rules synchronously in the triggering thread, and
// owns the LATs, timers and action backends.
//
// Threading: hook methods run concurrently in session threads. The
// dispatch hot path is lock-free: the compiled rule table is published
// RCU-style through an atomic shared_ptr, so FireEvent never touches the
// registry mutex — that mutex guards only the (cold) DBA surface, which
// rebuilds and republishes the table on every change ("rules can be added
// and removed dynamically", §3). LATs use their own fine-grained sharded
// latches (see lat.h).
#ifndef SQLCM_SQLCM_MONITOR_ENGINE_H_
#define SQLCM_SQLCM_MONITOR_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "engine/monitor_hooks.h"
#include "obs/error_ring.h"
#include "obs/span_ring.h"
#include "obs/trace_ring.h"
#include "sqlcm/actions_io.h"
#include "sqlcm/event_queue.h"
#include "sqlcm/lat.h"
#include "sqlcm/load_governor.h"
#include "sqlcm/monitor_metrics.h"
#include "sqlcm/predicate_index.h"
#include "sqlcm/rule.h"
#include "sqlcm/schema.h"
#include "sqlcm/timer.h"

namespace sqlcm::cm {

class SystemViews;
/// Per-thread causal-trace bookkeeping (defined in monitor_engine.cc).
struct TraceFrame;

/// Fault-injection point honoured by every instrumented hook
/// (common/fault.h): `slow` sleeps the hook for kFaultHookSlowMicros,
/// inflating measured overhead — the chaos lever that drives the
/// LoadGovernor in tests and CI.
inline constexpr char kFaultHookSlow[] = "monitor.hook.slow";
inline constexpr int64_t kFaultHookSlowMicros = 1000;

/// What a hook does when the deferred-event queue is full (backpressure
/// integration with the LoadGovernor; docs/PERFORMANCE.md §Async pipeline).
enum class QueueFullPolicy {
  kBlock,  ///< wait for space (lossless; re-couples hook to drain speed)
  kDrop,   ///< discard the event, counting it in queue.dropped
  kShed,   ///< keep 1-in-2^sample_shift (governor sampling), shed the rest
};

class MonitorEngine final : public engine::MonitorHooks,
                            public txn::LockEventObserver,
                            public LatResolver {
 public:
  struct Options {
    /// Action backends; null selects internal capturing implementations.
    Mailer* mailer = nullptr;
    ProcessLauncher* launcher = nullptr;
    /// Spawn the 1ms timer-polling thread. Tests usually poll manually.
    bool start_timer_thread = false;
    /// Register the sqlcm_* virtual system views in the database catalog.
    bool register_system_views = true;
    /// Event-trace ring capacity (rounded up to a power of two).
    size_t trace_capacity = 1024;
    /// Span-ring capacity for the causal tracing plane (rounded up to a
    /// power of two). The ring starts disabled, like the event trace.
    size_t span_capacity = 4096;
    /// Fraction [0, 1] of events whose traces record child spans (rule
    /// conditions, actions, LAT upserts) and feed the sqlcm_profile
    /// attribution. Root event spans are always recorded while the span
    /// ring is enabled.
    double span_sample_rate = 1.0;
    /// How many of the most expensive traces sqlcm_slow_events retains
    /// whole (every span) as exemplars.
    size_t slow_trace_k = 8;
    /// When non-empty and the interval is positive, a background thread
    /// dumps the metrics registry in Prometheus text exposition to this
    /// path (atomic tempfile+rename) every interval.
    std::string metrics_export_path;
    double metrics_export_interval_secs = 0;
    /// Time per-rule action latency and per-LAT upsert latency (one extra
    /// clock read each). Off by default to keep fired-rule dispatch at one
    /// clock read per event (paper §6, experiment E2).
    bool detailed_timing = false;
    /// Quarantine thresholds applied to every rule's circuit breaker.
    RuleBreaker::Options breaker;
    /// Alert-storm cap applied to every rule's SendMail/Persist actions
    /// (suppressions surface in sqlcm_rule_stats.actions_suppressed).
    /// Disabled by default: max_actions = 0 admits everything.
    ActionRateLimiter::Options action_rate_limit;
    /// Overload-degradation configuration (docs/ROBUSTNESS.md ladder).
    LoadGovernor::Options governor;
    /// CheckpointLat retry policy for transient snapshot-write failures.
    int persist_attempts = 3;
    int64_t persist_backoff_micros = 1000;
    /// Deferred-evaluation pipeline (docs/PERFORMANCE.md §Async pipeline).
    /// When on, rules classified deferrable at CREATE RULE time are
    /// evaluated by the monitor worker pool off the query thread; the hook
    /// only enqueues a fixed-size event record. Inline rules (Cancel
    /// actions, non-terminal events, class iteration) keep today's
    /// synchronous path either way.
    bool async_rule_eval = false;
    /// Worker threads draining the event queue. With 1 worker drain order
    /// is FIFO; more workers may interleave events, which is visible only
    /// to order-sensitive aggregates (FIRST/LAST) across concurrent events.
    size_t monitor_threads = 1;
    /// Event-queue capacity (rounded up to a power of two).
    size_t event_queue_capacity = 8192;
    /// Max events a worker pops per drain; also the LAT insert batch bound.
    size_t drain_batch_size = 256;
    QueueFullPolicy queue_full_policy = QueueFullPolicy::kBlock;
    /// Shared predicate index (docs/PERFORMANCE.md §"Predicate index").
    /// When on, conditions of rules sharing an event are decomposed into
    /// canonicalized conjuncts evaluated at most once per event, with
    /// memoized three-valued outcomes fanned out to every subscriber. Off =
    /// exactly the historical per-rule evaluation path (differential-oracle
    /// toggle).
    bool predicate_index = true;
    /// Online learned conjunct ordering on top of the index: per-predicate
    /// pass-rate/cost EWMAs + UCB1 exploration periodically re-sort each
    /// rule's walk so cheap, rejective conjuncts run first. Off = authoring
    /// order with bit-exact naive error accounting.
    bool learned_predicate_order = true;
    /// Events between reorder passes (0 disables reordering; the pass
    /// itself is a cheap RCU republish off the hot path).
    uint64_t predicate_reorder_interval = 4096;
  };

  /// Attaches to `db` (registers the hook interface and lock observer).
  MonitorEngine(engine::Database* db, Options options);
  explicit MonitorEngine(engine::Database* db)
      : MonitorEngine(db, Options()) {}
  ~MonitorEngine() override;

  MonitorEngine(const MonitorEngine&) = delete;
  MonitorEngine& operator=(const MonitorEngine&) = delete;

  // -- DBA surface: LATs ----------------------------------------------------

  common::Status DefineLat(LatSpec spec);
  /// Refuses while any rule references the LAT.
  common::Status DropLat(std::string_view name);
  Lat* FindLat(std::string_view name) const override;
  std::vector<std::string> LatNames() const;

  /// Persists a LAT to an engine table (creating the table on first use
  /// with the LAT's columns plus a trailing INT timestamp column).
  common::Status PersistLat(std::string_view lat_name,
                            const std::string& table_name);
  /// Seeds a LAT from a previously persisted table (restart continuity).
  common::Status SeedLat(std::string_view lat_name,
                         const std::string& table_name);

  /// Crash-safe file checkpoint of a LAT: exports the raw aggregation
  /// state (moments + aging blocks) through a transient staging table into
  /// a checksummed atomic v2 snapshot (storage/table_io), retrying
  /// transient write failures per Options::persist_attempts. Lossless:
  /// RestoreLat reproduces every aggregate — including STDEV and
  /// mid-window aging variants — bit-exactly.
  common::Status CheckpointLat(std::string_view lat_name,
                               const std::string& file_path);
  /// Restores a LAT from a CheckpointLat snapshot, negotiating the format:
  /// v2 snapshots restore raw state exactly (Lat::ImportState); v1 and
  /// legacy headerless CSV snapshots seed from materialized values with
  /// the documented lossy semantics (Lat::SeedFrom). A corrupt or
  /// truncated primary snapshot falls back to the rotated `.bak` copy; the
  /// recovery is counted (robustness.persist_fallbacks) and reported via
  /// the error ring.
  common::Status RestoreLat(std::string_view lat_name,
                            const std::string& file_path);

  // -- DBA surface: rules -----------------------------------------------------

  /// Compiles and activates a rule; returns its id. Rules for one event
  /// fire in activation order (paper §5: fixed evaluation order).
  common::Result<uint64_t> AddRule(const RuleSpec& spec);
  common::Status RemoveRule(uint64_t rule_id);
  common::Status SetRuleEnabled(uint64_t rule_id, bool enabled);
  size_t rule_count() const;

  /// Force-closes a quarantined rule's circuit breaker (operator override;
  /// the breaker also re-admits itself via half-open probing after its
  /// cooldown).
  common::Status ReinstateRule(uint64_t rule_id);

  // -- DBA surface: timers ----------------------------------------------------

  common::Status CreateTimer(const std::string& name);
  common::Status SetTimer(const std::string& name, double interval_seconds,
                          int64_t repeats);
  bool IsTimerName(std::string_view name) const override;
  TimerManager* timer_manager() { return &timers_; }

  // -- Introspection ----------------------------------------------------------

  CapturingMailer* capturing_mailer() { return &default_mailer_; }
  CapturingLauncher* capturing_launcher() { return &default_launcher_; }
  size_t active_query_count() const;
  uint64_t events_processed() const {
    return metrics_.events_processed.value();
  }
  uint64_t rules_fired() const { return metrics_.rules_fired.value(); }
  /// Most recent rule-processing error (rules never fail the server; errors
  /// are recorded here). Empty when none.
  std::string last_error() const { return errors_.MostRecent(); }

  // -- Observability ----------------------------------------------------------

  const MonitorMetrics& metrics() const { return metrics_; }
  obs::TraceRing* trace_ring() { return &trace_; }
  const obs::TraceRing& trace_ring() const { return trace_; }
  obs::SpanRing* span_ring() { return &spans_; }
  const obs::SpanRing& span_ring() const { return spans_; }
  obs::SlowTraceTable* slow_traces() { return &slow_traces_; }
  const obs::SlowTraceTable& slow_traces() const { return slow_traces_; }
  LoadGovernor* governor() { return &governor_; }
  const LoadGovernor& governor() const { return governor_; }

  /// Adjusts the per-event child-span sampling rate (see
  /// Options::span_sample_rate) at runtime.
  void set_span_sampling(double rate);
  double span_sample_rate() const;

  /// Dumps the whole metrics registry in Prometheus text exposition to
  /// `path` through an atomic tempfile+rename write (storage/table_io), so
  /// a scraper never observes a partial file. Also runs periodically when
  /// Options::metrics_export_path / metrics_export_interval_secs are set.
  common::Status ExportMetricsNow(const std::string& path);

  std::vector<obs::ErrorRing::Entry> recent_errors() const {
    return errors_.Snapshot();
  }
  uint64_t total_errors() const { return errors_.total(); }
  /// Errors evicted from the recent-error ring by newer entries.
  uint64_t dropped_errors() const { return errors_.dropped(); }

  void set_detailed_timing(bool on) {
    detailed_timing_.store(on, std::memory_order_relaxed);
  }
  bool detailed_timing() const {
    return detailed_timing_.load(std::memory_order_relaxed);
  }

  /// Blocks until every enqueued deferred event has been fully processed
  /// (queue empty and no worker mid-batch). No-op when the async pipeline
  /// is off. Tests and teardown use this as the sync barrier; it must not
  /// be called while holding registry_mutex_.
  void DrainEventQueue();

  /// Deferred-event queue depth / capacity (0 when the pipeline is off).
  size_t event_queue_depth() const {
    return event_queue_ ? event_queue_->ApproxDepth() : 0;
  }
  size_t event_queue_capacity() const {
    return event_queue_ ? event_queue_->capacity() : 0;
  }

  /// Stable snapshots for the system views (short registry lock; the
  /// shared_ptrs keep rules/LATs alive across concurrent Remove/Drop).
  std::vector<std::shared_ptr<const CompiledRule>> SnapshotRules() const;
  std::vector<std::shared_ptr<const Lat>> SnapshotLats() const;

  /// One sqlcm_rule_predicate_stats row: a shared predicate of one
  /// (event kind, dispatch lane) index with its learned statistics.
  struct PredicateStatRow {
    const char* event = "";
    const char* lane = "";  // "sync" | "deferred"
    std::string text;
    uint64_t hash = 0;
    uint64_t subscribers = 0;
    uint64_t evals = 0;
    uint64_t passes = 0;
    double mean_cost_ns = 0;
    int64_t rank = -1;
  };
  /// Lock-free walk of the current RCU rule-table snapshot's indexes.
  std::vector<PredicateStatRow> SnapshotPredicateStats() const;

  // -- engine::MonitorHooks ----------------------------------------------------

  void OnStatementCompiled(engine::CachedPlan* plan) override;
  void OnQueryStart(const engine::QueryInfo& info) override;
  void OnQueryCommit(const engine::QueryInfo& info) override;
  void OnQueryCancel(const engine::QueryInfo& info) override;
  void OnQueryRollback(const engine::QueryInfo& info) override;
  void OnTransactionBegin(uint64_t session_id, txn::TxnId txn_id) override;
  void OnTransactionCommit(uint64_t session_id, txn::TxnId txn_id,
                           int64_t duration_micros) override;
  void OnTransactionRollback(uint64_t session_id, txn::TxnId txn_id,
                             int64_t duration_micros) override;
  txn::LockEventObserver* lock_event_observer() override { return this; }

  // -- txn::LockEventObserver ---------------------------------------------------

  void OnBlocked(txn::TxnId blocked, txn::TxnId blocker,
                 const txn::ResourceId& resource) override;
  void OnBlockReleased(txn::TxnId blocked, txn::TxnId blocker,
                       const txn::ResourceId& resource,
                       int64_t wait_micros) override;

 private:
  struct RuleTable {
    /// Rules evaluated synchronously in the hook thread. When the async
    /// pipeline is off, ALL enabled rules live here (classification is
    /// still computed and visible, but dispatch order stays exactly the
    /// pre-pipeline activation order).
    std::array<std::vector<std::shared_ptr<const CompiledRule>>,
               kNumEventKinds>
        by_event;
    /// Deferrable rules drained by the worker pool (populated only while
    /// Options::async_rule_eval is on).
    std::array<std::vector<std::shared_ptr<const CompiledRule>>,
               kNumEventKinds>
        deferred_by_event;
    /// Shared-conjunct indexes, positionally parallel to the rule vectors
    /// above; built only while Options::predicate_index is on. Part of the
    /// same RCU snapshot so dispatch always sees rules and index agree.
    std::array<PredicateIndex, kNumEventKinds> sync_index;
    std::array<PredicateIndex, kNumEventKinds> deferred_index;
  };

  /// One LAT upsert buffered during a deferred batch; flushed grouped by
  /// LAT through Lat::InsertBatch (one shard latch per batch+shard). The
  /// record pointer stays valid because the batch's DeferredEvent
  /// keepalives outlive the flush.
  struct DeferredLatInsert {
    Lat* lat = nullptr;
    const void* record = nullptr;
    int64_t now_micros = 0;
  };

  /// Snapshot of the rule list for one event kind (short registry lock).
  std::vector<std::shared_ptr<const CompiledRule>> RulesFor(
      EventKind kind) const;

  void RebuildRuleTableLocked();

  /// Dispatches all rules for (kind, qualifier) against `base_ctx`,
  /// handling unbound-class iteration and deferred side-effect events.
  /// `query_keepalive` / `txn_keepalive` carry the bound record's owning
  /// reference for terminal events so the async pipeline can enqueue the
  /// event for evaluation after the registries drop it.
  void FireEvent(EventKind kind, const std::string& qualifier,
                 EvalContext* base_ctx,
                 std::shared_ptr<QueryRecord> query_keepalive = nullptr,
                 std::shared_ptr<TransactionRecord> txn_keepalive = nullptr);

  // -- Deferred-evaluation pipeline (event_queue.h) ---------------------------

  /// Applies the queue-full policy and enqueues one deferred event.
  void EnqueueDeferred(DeferredEvent&& ev);
  /// Worker thread body: batch-pop and process until shutdown + drained.
  void MonitorWorkerLoop();
  /// Evaluates one drained batch against one RCU table load, buffering LAT
  /// upserts, then flushes them vectorized (Lat::InsertBatch).
  void ProcessDeferredBatch(DeferredEvent* events, size_t count);
  /// Evaluates one deferred event's rules (span handling mirrors FireEvent;
  /// adds the queue_wait child span carrying enqueue->drain latency).
  /// `index` is the lane's predicate index, or null when indexing is off.
  void DispatchDeferredEvent(
      DeferredEvent& ev,
      const std::vector<std::shared_ptr<const CompiledRule>>& rules,
      const PredicateIndex* index,
      std::vector<DeferredLatInsert>* lat_sink);
  /// Returns true when the rule fired (condition passed, actions ran).
  /// `frame` is non-null only when the current trace is sampled for
  /// profiling: condition/action child spans are emitted and self-time is
  /// attributed to the rule. When `lat_sink` is non-null (deferred batch
  /// processing), Insert actions buffer into it instead of upserting
  /// immediately; the caller flushes via Lat::InsertBatch. When `index` /
  /// `entry` / `memo` are set and the entry is indexed, the condition is
  /// answered by the memoized shared-conjunct walk (an error verdict falls
  /// back to the naive evaluator below for exact accounting).
  bool RunRule(const CompiledRule& rule, EvalContext* ctx, TraceFrame* frame,
               std::vector<DeferredLatInsert>* lat_sink = nullptr,
               const PredicateIndex* index = nullptr,
               const IndexedRule* entry = nullptr,
               PredicateMemo* memo = nullptr);
  common::Status ExecuteAction(const CompiledAction& action, EvalContext* ctx,
                               TraceFrame* frame,
                               std::vector<DeferredLatInsert>* lat_sink);
  common::Status PersistRowToTable(const std::string& table_name,
                                   const std::vector<std::string>& col_names,
                                   const std::vector<common::ValueKind>& kinds,
                                   common::Row row);
  common::Result<storage::Table*> EnsureTable(
      const std::string& table_name, const std::vector<std::string>& col_names,
      const std::vector<common::ValueKind>& kinds);

  /// Template substitution for SendMail/RunExternal bodies: replaces
  /// {Class.Attribute} and {Lat.Column} with display values from `ctx`.
  std::string SubstituteTemplate(const std::string& text, EvalContext* ctx);

  void HandleEviction(Lat* lat, common::Row evicted);
  void HandleTimerAlarm(const TimerRecord& timer);
  void RecordError(const common::Status& status);

  /// Learned-ordering reorder pass: re-sorts every index's conjunct walks
  /// by the UCB1 score and republishes the rule table. Runs every
  /// Options::predicate_reorder_interval events; skips (retries next
  /// interval) when the registry mutex is contended.
  void MaybeReorderPredicates();

  /// True when event `seq` gets child spans + profiling attribution.
  bool SampleTrace(uint64_t seq) const;
  /// Engine-wide unique span id; never returns 0 (0 = "no parent").
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Records `span` in the ring and buffers it in `frame` for the slow-trace
  /// exemplar table (bounded; overflow is counted, not fatal).
  void EmitSpan(TraceFrame* frame, const obs::Span& span);
  void ExporterLoop();

  /// Feeds a failed evaluation into the rule's circuit breaker; records the
  /// quarantine when it trips.
  void NoteRuleFailure(const CompiledRule& rule, int64_t now_micros);
  /// Propagates a governor shed-level transition into engine knobs
  /// (detailed timing, trace, per-LAT aging shed) and metrics.
  void ApplyShedLevel(int old_level, int new_level);
  /// Builds the transient (non-catalog) staging table used by
  /// v1 snapshots and RestoreLat's legacy path: LAT columns + trailing
  /// persist_ts.
  common::Result<std::unique_ptr<storage::Table>> MakeLatStagingTable(
      const Lat& lat) const;
  /// Builds the transient staging table for v2 raw-state snapshots:
  /// Lat::StateColumnNames + trailing persist_ts.
  common::Result<std::unique_ptr<storage::Table>> MakeLatStateStagingTable(
      const Lat& lat) const;

  // Query/transaction registries.
  std::shared_ptr<QueryRecord> FindActiveQueryRecord(uint64_t query_id) const;
  std::shared_ptr<QueryRecord> CurrentQueryOfTxn(txn::TxnId txn_id) const;
  void FinishQuery(const engine::QueryInfo& info, EventKind terminal_event);

  /// True when at least one rule exists (events are no-ops otherwise;
  /// paper §2.1: "no monitoring is performed unless it is required").
  bool MonitoringActive() const {
    return monitoring_active_.load(std::memory_order_acquire);
  }

  engine::Database* db_;
  Options options_;
  Mailer* mailer_;
  ProcessLauncher* launcher_;
  CapturingMailer default_mailer_;
  CapturingLauncher default_launcher_;
  TimerManager timers_;

  mutable std::mutex registry_mutex_;  // lats_, rules_ (writers of rule_table_)
  std::unordered_map<std::string, std::shared_ptr<Lat>> lats_;  // lower name
  std::vector<std::shared_ptr<CompiledRule>> rules_;            // fixed order
  /// RCU-style publication of the compiled dispatch table: writers rebuild
  /// under registry_mutex_ and store; FireEvent loads without any lock.
  std::atomic<std::shared_ptr<const RuleTable>> rule_table_;
  /// Learned predicate state keyed by canonical hash; consulted at every
  /// index build (under registry_mutex_) so selectivity/cost EWMAs survive
  /// CREATE/DROP RULE swaps and reorders. Entries are never dropped — the
  /// predicate universe is bounded by rule text ever created.
  PredicateStatsRegistry predicate_stats_;
  /// Lock-free per-event fast path: FireEvent returns without touching the
  /// registry mutex when no enabled rule listens to the event kind.
  std::array<std::atomic<bool>, kNumEventKinds> has_rules_{};
  uint64_t next_rule_id_ = 1;
  std::atomic<bool> monitoring_active_{false};
  // Probe-scope gates (paper §2.1: only gather what active rules need):
  // transaction records / signature sequences are maintained only when a
  // rule references the Transaction class; per-transaction last-query
  // bookkeeping (blocker attribution) only when a rule listens to lock
  // conflicts or iterates Blocker/Blocked.
  std::atomic<bool> track_transactions_{false};
  std::atomic<bool> track_blocking_{false};
  // Global active-query registry needed only for unbound-Query iteration,
  // blocking attribution, or the concurrency probe; otherwise a
  // thread-local stack carries the record from Start to the terminal hook.
  std::atomic<bool> track_registry_{false};
  std::atomic<bool> track_concurrency_{false};

  mutable std::mutex objects_mutex_;  // registries below
  std::unordered_map<uint64_t, std::shared_ptr<QueryRecord>> active_queries_;
  std::unordered_map<txn::TxnId, std::vector<std::shared_ptr<QueryRecord>>>
      txn_query_stack_;
  std::unordered_map<txn::TxnId, std::shared_ptr<QueryRecord>> txn_last_query_;
  std::unordered_map<txn::TxnId, std::shared_ptr<TransactionRecord>>
      active_txns_;
  // Blocker captured at block time, keyed by the blocked transaction: the
  // blocker's transaction may commit (and leave the registries) before the
  // waiter thread reports Block_Released.
  std::unordered_map<txn::TxnId, std::shared_ptr<QueryRecord>>
      blocker_at_block_time_;

  // Observability state. metrics_ instruments are updated lock-free from
  // hook threads; errors_ has its own internal mutex (error path only).
  MonitorMetrics metrics_;
  obs::TraceRing trace_;
  obs::ErrorRing errors_{16};
  std::atomic<bool> detailed_timing_{false};

  // Causal tracing plane. The span ring and slow-trace table are written
  // lock-free from hook threads; the sampling threshold is Options::
  // span_sample_rate scaled to [0, kSpanSampleScale].
  obs::SpanRing spans_;
  obs::SlowTraceTable slow_traces_;
  std::atomic<uint32_t> span_sample_threshold_{0};
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<bool> spans_before_shed_{false};

  // Periodic Prometheus exporter (runs only when configured in Options).
  std::thread exporter_thread_;
  std::mutex exporter_mutex_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;

  // Graceful degradation (robustness layer). `timing_before_shed_` /
  // `trace_before_shed_` remember user-configured state across a shed so
  // recovery restores it.
  LoadGovernor governor_;
  std::atomic<uint64_t> event_seq_{0};
  std::atomic<bool> timing_before_shed_{false};
  std::atomic<bool> trace_before_shed_{false};

  // Deferred-evaluation pipeline: the bounded MPMC queue, its worker pool,
  // and the drain barrier (in-flight batch count + condvar) used by
  // DrainEventQueue / DropLat / teardown.
  std::unique_ptr<EventQueue> event_queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> workers_stop_{false};
  std::atomic<int> batches_in_flight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  /// The sqlcm_* virtual tables; owns their catalog lifetime. Declared
  /// last so view refreshes stop before anything else is torn down.
  std::unique_ptr<SystemViews> views_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_MONITOR_ENGINE_H_
