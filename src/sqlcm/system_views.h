// SQL-queryable system views over the monitor's own state.
//
// The paper turns monitored objects into relational data (Persist, LATs);
// this module closes the loop by doing the same for the monitor itself:
// virtual tables registered in the storage catalog whose contents are
// rebuilt from live monitor state at the start of every scan, so plain
// SELECT — and therefore ECA rules and LATs — can read monitor internals.
//
//   sqlcm_engine_stats  every registered metric, plan-cache stats, trace
//                       status, error totals, and the recent-error ring
//   sqlcm_rule_stats    per-rule evaluations / fires / errors / latency
//   sqlcm_lat_stats     per-LAT rows, evictions, latch contention, latency
//   sqlcm_event_trace   the recent-event ring (when tracing is enabled)
//   sqlcm_trace_spans   the causal span ring: one row per span, with
//                       trace/parent ids so rule cascades rebuild as trees
//   sqlcm_slow_events   the top-K most expensive traces, retained whole
//                       with their full span breakdown
//   sqlcm_profile       per-rule / per-action-kind / per-LAT cumulative
//                       self-time and share of total monitoring overhead
//   sqlcm_rule_predicate_stats
//                       the shared predicate index: one row per distinct
//                       conjunct per event/lane with subscriber count,
//                       eval/pass totals and the learned walk rank
//
// Refreshes run *before* the table latch is taken (storage::Table virtual
// hook) and only read monitor snapshots, so no monitor mutex is ever held
// while the table latch is, and vice versa.
#ifndef SQLCM_SQLCM_SYSTEM_VIEWS_H_
#define SQLCM_SQLCM_SYSTEM_VIEWS_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqlcm::engine {
class Database;
}

namespace sqlcm::storage {
class Table;
}

namespace sqlcm::cm {

class MonitorEngine;

inline constexpr const char* kEngineStatsView = "sqlcm_engine_stats";
inline constexpr const char* kRuleStatsView = "sqlcm_rule_stats";
inline constexpr const char* kLatStatsView = "sqlcm_lat_stats";
inline constexpr const char* kEventTraceView = "sqlcm_event_trace";
inline constexpr const char* kFaultPointsView = "sqlcm_fault_points";
inline constexpr const char* kTraceSpansView = "sqlcm_trace_spans";
inline constexpr const char* kSlowEventsView = "sqlcm_slow_events";
inline constexpr const char* kProfileView = "sqlcm_profile";
inline constexpr const char* kRulePredicateStatsView =
    "sqlcm_rule_predicate_stats";

class SystemViews {
 public:
  /// Creates and registers the views; a view whose name already exists
  /// as a non-virtual table is skipped (reported via monitor error ring).
  SystemViews(MonitorEngine* monitor, engine::Database* db);
  /// Drops every view this instance registered.
  ~SystemViews();

  SystemViews(const SystemViews&) = delete;
  SystemViews& operator=(const SystemViews&) = delete;

 private:
  storage::Table* Register(const std::string& name,
                           std::vector<std::pair<std::string, char>> columns,
                           const std::vector<std::string>& primary_key);

  void RefreshEngineStats(storage::Table* table);
  void RefreshRuleStats(storage::Table* table);
  void RefreshLatStats(storage::Table* table);
  void RefreshEventTrace(storage::Table* table);
  void RefreshFaultPoints(storage::Table* table);
  void RefreshTraceSpans(storage::Table* table);
  void RefreshSlowEvents(storage::Table* table);
  void RefreshProfile(storage::Table* table);
  void RefreshRulePredicateStats(storage::Table* table);

  MonitorEngine* monitor_;
  engine::Database* db_;
  std::vector<std::string> registered_;  // names we own and must drop

  /// Serializes all view refreshes (concurrent SELECTs would otherwise
  /// interleave Truncate/Insert).
  std::mutex refresh_mutex_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_SYSTEM_VIEWS_H_
