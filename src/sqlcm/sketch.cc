#include "sqlcm/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace sqlcm::cm {

using common::Result;
using common::Status;
using common::Value;
using common::ValueKind;

namespace {

/// Collapse cap: ln γ at level k is ln γ₀ · 2^k, so by level 24 a single
/// bucket spans the entire double range and further level-ups cannot merge
/// anything. Bounds CollapseToBudget against a budget below one bucket.
constexpr int kMaxQuantileLevel = 24;

double LnGamma0() {
  static const double v =
      std::log((1.0 + QuantileSketch::kBaseAlpha) /
               (1.0 - QuantileSketch::kBaseAlpha));
  return v;
}

double LnGammaAt(int level) { return LnGamma0() * std::ldexp(1.0, level); }

uint64_t Fnv1a64Bytes(const void* data, size_t len, uint64_t h) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t SplitMix64(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

Result<int64_t> ParseSketchInt(std::string_view s) {
  const std::string text(s);
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    return Status::ParseError("bad integer in sketch state: '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

std::vector<std::string_view> SplitSketchFields(std::string_view s,
                                                char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

}  // namespace

uint64_t DistinctValueHash(const Value& v) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  const auto mix_tag_and_bytes = [&h](uint8_t tag, const void* data,
                                      size_t len) {
    h = Fnv1a64Bytes(&tag, 1, h);
    h = Fnv1a64Bytes(data, len, h);
  };
  switch (v.kind()) {
    case ValueKind::kNull: {
      const uint8_t tag = 0;
      h = Fnv1a64Bytes(&tag, 1, h);
      break;
    }
    case ValueKind::kBool: {
      const uint8_t payload = v.bool_value() ? 1 : 0;
      mix_tag_and_bytes(1, &payload, 1);
      break;
    }
    case ValueKind::kInt: {
      const int64_t payload = v.int_value();
      mix_tag_and_bytes(2, &payload, sizeof(payload));
      break;
    }
    case ValueKind::kDouble: {
      double d = v.double_value();
      if (d == 0.0) d = 0.0;  // -0.0 → +0.0 (one bit pattern per value)
      // Integral doubles hash as the equal int so DISTINCT agrees with
      // Value::Compare's cross-kind numeric equality.
      if (std::nearbyint(d) == d && std::abs(d) <= 9.007199254740992e15) {
        const int64_t as_int = static_cast<int64_t>(d);
        mix_tag_and_bytes(2, &as_int, sizeof(as_int));
      } else {
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix_tag_and_bytes(3, &bits, sizeof(bits));
      }
      break;
    }
    case ValueKind::kString: {
      const std::string& s = v.string_value();
      mix_tag_and_bytes(4, s.data(), s.size());
      break;
    }
  }
  return SplitMix64(h);
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

int32_t QuantileSketch::IndexFor(double magnitude) const {
  return static_cast<int32_t>(
      std::ceil(std::log(magnitude) / LnGammaAt(level_)));
}

double QuantileSketch::EstimateFor(int32_t index) const {
  // 2·γ^i/(γ+1) computed in log space so extreme levels/indexes neither
  // overflow nor collapse to 0: ln est = (i−1)·lnγ + ln2 − ln(1 + γ⁻¹).
  const double ln_gamma = LnGammaAt(level_);
  const double ln_est = (static_cast<double>(index) - 1.0) * ln_gamma +
                        std::log(2.0) - std::log1p(std::exp(-ln_gamma));
  const double est = std::exp(ln_est);
  if (std::isinf(est)) return std::numeric_limits<double>::max();
  return est;
}

double QuantileSketch::alpha() const {
  // (γ−1)/(γ+1) = tanh(lnγ / 2); saturates at 1 for extreme levels.
  return std::tanh(LnGammaAt(level_) / 2.0);
}

void QuantileSketch::Add(double v) {
  if (std::isnan(v)) return;
  if (v == 0.0) {
    ++zero_count_;
  } else if (v > 0.0) {
    ++pos_[IndexFor(v)];
    ++pos_count_;
  } else {
    ++neg_[IndexFor(-v)];
    ++neg_count_;
  }
}

void QuantileSketch::AlignUp(std::map<int32_t, int64_t>* buckets,
                             int levels) {
  for (int step = 0; step < levels; ++step) {
    std::map<int32_t, int64_t> up;
    for (const auto& [index, count] : *buckets) {
      // ⌈i/2⌉: level-(k+1) bucket boundaries are the even level-k ones.
      const int32_t parent = index >= 0 ? (index + 1) / 2 : -((-index) / 2);
      up[parent] += count;
    }
    *buckets = std::move(up);
  }
}

void QuantileSketch::LevelUp() {
  AlignUp(&neg_, 1);
  AlignUp(&pos_, 1);
  ++level_;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  while (level_ < other.level_) LevelUp();
  std::map<int32_t, int64_t> other_neg = other.neg_;
  std::map<int32_t, int64_t> other_pos = other.pos_;
  AlignUp(&other_neg, level_ - other.level_);
  AlignUp(&other_pos, level_ - other.level_);
  for (const auto& [index, count] : other_neg) neg_[index] += count;
  for (const auto& [index, count] : other_pos) pos_[index] += count;
  zero_count_ += other.zero_count_;
  neg_count_ += other.neg_count_;
  pos_count_ += other.pos_count_;
}

void QuantileSketch::Subtract(const QuantileSketch& baseline) {
  while (level_ < baseline.level_) LevelUp();
  std::map<int32_t, int64_t> base_neg = baseline.neg_;
  std::map<int32_t, int64_t> base_pos = baseline.pos_;
  AlignUp(&base_neg, level_ - baseline.level_);
  AlignUp(&base_pos, level_ - baseline.level_);
  const auto subtract_into = [](std::map<int32_t, int64_t>* dst,
                                const std::map<int32_t, int64_t>& sub) {
    for (const auto& [index, count] : sub) {
      auto it = dst->find(index);
      if (it == dst->end()) continue;
      it->second -= count;
      if (it->second <= 0) dst->erase(it);
    }
  };
  subtract_into(&neg_, base_neg);
  subtract_into(&pos_, base_pos);
  zero_count_ = std::max<int64_t>(0, zero_count_ - baseline.zero_count_);
  neg_count_ = 0;
  pos_count_ = 0;
  for (const auto& [_, count] : neg_) neg_count_ += count;
  for (const auto& [_, count] : pos_) pos_count_ += count;
}

double QuantileSketch::Quantile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      static_cast<int64_t>(std::floor(q * static_cast<double>(n - 1)));
  // Ascending value order: negatives (largest |v| first), zeros, positives.
  int64_t cum = 0;
  for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
    cum += it->second;
    if (cum > rank) return -EstimateFor(it->first);
  }
  cum += zero_count_;
  if (cum > rank) return 0.0;
  for (const auto& [index, count] : pos_) {
    cum += count;
    if (cum > rank) return EstimateFor(index);
  }
  // Unreachable when the cached counts are consistent; return the max
  // bucket estimate defensively.
  return pos_.empty() ? 0.0 : EstimateFor(pos_.rbegin()->first);
}

int QuantileSketch::CollapseToBudget(size_t max_bytes) {
  if (max_bytes == 0) return 0;
  int collapses = 0;
  while (ApproxBytes() > max_bytes && bucket_count() > 1 &&
         level_ < kMaxQuantileLevel) {
    LevelUp();
    ++collapses;
  }
  return collapses;
}

std::string QuantileSketch::Encode() const {
  if (empty()) return "";
  std::string out = "Q1 " + std::to_string(level_) + ' ' +
                    std::to_string(zero_count_) + ' ' +
                    std::to_string(neg_.size()) + ' ' +
                    std::to_string(pos_.size());
  for (const auto* store : {&neg_, &pos_}) {
    for (const auto& [index, count] : *store) {
      out += ' ';
      out += std::to_string(index);
      out += ':';
      out += std::to_string(count);
    }
  }
  return out;
}

Result<QuantileSketch> QuantileSketch::Decode(std::string_view s) {
  QuantileSketch sketch;
  if (s.empty()) return sketch;
  const auto fields = SplitSketchFields(s, ' ');
  if (fields.size() < 5 || fields[0] != "Q1") {
    return Status::ParseError("bad quantile sketch header in '" +
                              std::string(s) + "'");
  }
  SQLCM_ASSIGN_OR_RETURN(const int64_t level, ParseSketchInt(fields[1]));
  SQLCM_ASSIGN_OR_RETURN(const int64_t zero, ParseSketchInt(fields[2]));
  SQLCM_ASSIGN_OR_RETURN(const int64_t nneg, ParseSketchInt(fields[3]));
  SQLCM_ASSIGN_OR_RETURN(const int64_t npos, ParseSketchInt(fields[4]));
  if (level < 0 || level > kMaxQuantileLevel || zero < 0 || nneg < 0 ||
      npos < 0 ||
      fields.size() != 5 + static_cast<size_t>(nneg) +
                           static_cast<size_t>(npos)) {
    return Status::ParseError("bad quantile sketch shape in '" +
                              std::string(s) + "'");
  }
  sketch.level_ = static_cast<int>(level);
  sketch.zero_count_ = zero;
  for (size_t i = 5; i < fields.size(); ++i) {
    const auto pair = SplitSketchFields(fields[i], ':');
    if (pair.size() != 2) {
      return Status::ParseError("bad quantile sketch bucket '" +
                                std::string(fields[i]) + "'");
    }
    SQLCM_ASSIGN_OR_RETURN(const int64_t index, ParseSketchInt(pair[0]));
    SQLCM_ASSIGN_OR_RETURN(const int64_t count, ParseSketchInt(pair[1]));
    if (count <= 0 || index < INT32_MIN || index > INT32_MAX) {
      return Status::ParseError("bad quantile sketch bucket '" +
                                std::string(fields[i]) + "'");
    }
    const bool is_neg = i < 5 + static_cast<size_t>(nneg);
    auto& store = is_neg ? sketch.neg_ : sketch.pos_;
    store[static_cast<int32_t>(index)] += count;
    (is_neg ? sketch.neg_count_ : sketch.pos_count_) += count;
  }
  return sketch;
}

// ---------------------------------------------------------------------------
// HllSketch
// ---------------------------------------------------------------------------

HllSketch::HllSketch(int precision)
    : precision_(std::clamp(precision, 4, 16)) {
  registers_.assign(static_cast<size_t>(1) << precision_, 0);
}

void HllSketch::AddHash(uint64_t hash) {
  const size_t index = static_cast<size_t>(hash >> (64 - precision_));
  const uint64_t w = hash << precision_;
  const uint8_t rho =
      w == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
             : static_cast<uint8_t>(__builtin_clzll(w) + 1);
  if (rho > registers_[index]) registers_[index] = rho;
}

Status HllSketch::Merge(const HllSketch& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument(
        "cannot merge HLL sketches of different precision (" +
        std::to_string(precision_) + " vs " +
        std::to_string(other.precision_) + ")");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

int64_t HllSketch::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0;
  size_t zeros = 0;
  for (const uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  double alpha;
  if (registers_.size() <= 16) alpha = 0.673;
  else if (registers_.size() <= 32) alpha = 0.697;
  else if (registers_.size() <= 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting: near-exact while the register array is sparse.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<int64_t>(std::llround(estimate));
}

double HllSketch::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

std::string HllSketch::Encode() const {
  bool any = false;
  for (const uint8_t reg : registers_) {
    if (reg != 0) {
      any = true;
      break;
    }
  }
  if (!any) return "";
  static const char kHex[] = "0123456789abcdef";
  std::string out = "H1 " + std::to_string(precision_) + ' ';
  out.reserve(out.size() + 2 * registers_.size());
  for (const uint8_t reg : registers_) {
    out += kHex[reg >> 4];
    out += kHex[reg & 0xF];
  }
  return out;
}

Result<HllSketch> HllSketch::Decode(std::string_view s) {
  if (s.empty()) return HllSketch();
  const auto fields = SplitSketchFields(s, ' ');
  if (fields.size() != 3 || fields[0] != "H1") {
    return Status::ParseError("bad HLL sketch header in '" + std::string(s) +
                              "'");
  }
  SQLCM_ASSIGN_OR_RETURN(const int64_t p, ParseSketchInt(fields[1]));
  if (p < 4 || p > 16) {
    return Status::ParseError("bad HLL precision in '" + std::string(s) +
                              "'");
  }
  HllSketch sketch(static_cast<int>(p));
  const std::string_view hex = fields[2];
  if (hex.size() != 2 * sketch.registers_.size()) {
    return Status::ParseError("bad HLL register payload in '" +
                              std::string(s) + "'");
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  const int max_rho = 64 - sketch.precision_ + 1;
  for (size_t i = 0; i < sketch.registers_.size(); ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad HLL register hex in '" +
                                std::string(s) + "'");
    }
    const int reg = (hi << 4) | lo;
    if (reg > max_rho) {
      return Status::ParseError("HLL register out of range in '" +
                                std::string(s) + "'");
    }
    sketch.registers_[i] = static_cast<uint8_t>(reg);
  }
  return sketch;
}

}  // namespace sqlcm::cm
