// Query and plan signatures (paper §4.2).
//
// A signature is a canonical linearized representation of a query's
// internal structure. Two queries share a signature iff their structures
// match up to matching constant wildcards / identified parameters and
// predicate ordering. Four kinds exist:
//   1. logical query signature      — over the logical plan tree
//   2. physical plan signature      — over the execution plan tree
//   3. logical transaction signature — sequence of (1) within a transaction
//   4. physical transaction signature — sequence of (2)
// The per-query signatures are computed once at optimization time and
// cached with the plan (engine::CachedPlan); transaction signatures are
// accumulated by the monitor as queries commit.
#ifndef SQLCM_SQLCM_SIGNATURE_H_
#define SQLCM_SQLCM_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/logical_plan.h"
#include "exec/physical_plan.h"

namespace sqlcm::cm {

struct Signature {
  std::string text;   // canonical linearization (the paper's BLOB)
  uint64_t hash = 0;  // 64-bit FNV-1a of `text`
};

/// Stable 64-bit hash of a signature text (FNV-1a).
uint64_t HashSignature(std::string_view text);

/// Logical query signature: constants wildcarded to '?', identified
/// parameters rendered as '$name', conjunct order normalized.
Signature LogicalQuerySignature(const exec::LogicalPlan& plan);

/// Physical plan signature: same canonicalization over the execution plan
/// (operators + access paths).
Signature PhysicalPlanSignature(const exec::PhysicalPlan& plan);

/// Transaction signature: the sequence of per-query signature hashes inside
/// the outermost begin/commit brackets, rendered as "[h1,h2,...]".
Signature TransactionSignature(const std::vector<uint64_t>& query_hashes);

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_SIGNATURE_H_
