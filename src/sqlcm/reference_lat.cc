#include "sqlcm/reference_lat.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace sqlcm::cm {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

Result<std::unique_ptr<ReferenceLat>> ReferenceLat::Create(LatSpec spec) {
  if (spec.max_bytes > 0) {
    return Status::InvalidArgument(
        "ReferenceLat does not model byte budgets");
  }
  auto ref = std::unique_ptr<ReferenceLat>(new ReferenceLat(std::move(spec)));
  const LatSpec& s = ref->spec_;
  const ObjectSchema& schema = ObjectSchema::Get();
  std::vector<std::string> column_names;
  for (const LatGroupColumn& col : s.group_by) {
    const int attr = schema.FindAttribute(s.object_class, col.attribute);
    if (attr < 0) {
      return Status::NotFound("ReferenceLat '" + s.name +
                              "': no attribute '" + col.attribute + "'");
    }
    ref->group_getters_.push_back(
        schema.attributes(s.object_class)[attr].getter);
    column_names.push_back(col.alias.empty() ? col.attribute : col.alias);
  }
  for (const LatAggColumn& col : s.aggregates) {
    AttributeGetter getter = nullptr;
    if (!col.attribute.empty()) {
      const int attr = schema.FindAttribute(s.object_class, col.attribute);
      if (attr < 0) {
        return Status::NotFound("ReferenceLat '" + s.name +
                                "': no attribute '" + col.attribute + "'");
      }
      getter = schema.attributes(s.object_class)[attr].getter;
    }
    if (col.aging && LatAggFuncIsSketch(col.func)) {
      return Status::InvalidArgument(
          "ReferenceLat '" + s.name + "': " + LatAggFuncName(col.func) +
          " has no aging variant");
    }
    ref->agg_getters_.push_back(getter);
    std::string name = col.alias;
    if (name.empty()) {
      name = std::string(LatAggFuncName(col.func)) +
             (col.attribute.empty() ? "" : "_" + col.attribute);
    }
    column_names.push_back(std::move(name));
  }
  for (const LatOrdering& ord : s.ordering) {
    int idx = -1;
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (common::EqualsIgnoreCase(column_names[i], ord.column)) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0) {
      return Status::NotFound("ReferenceLat '" + s.name +
                              "': ordering column '" + ord.column +
                              "' does not exist");
    }
    const size_t groups = s.group_by.size();
    if (static_cast<size_t>(idx) >= groups &&
        s.aggregates[static_cast<size_t>(idx) - groups].aging) {
      return Status::InvalidArgument(
          "ReferenceLat '" + s.name +
          "': aging ordering columns are out of the oracle's scope");
    }
    if (static_cast<size_t>(idx) >= groups &&
        LatAggFuncIsSketch(
            s.aggregates[static_cast<size_t>(idx) - groups].func)) {
      // The production LAT orders by its *approximate* sketch answers; an
      // exact recompute would evict different rows, so sketch-ordered
      // eviction cannot be oracled.
      return Status::InvalidArgument(
          "ReferenceLat '" + s.name +
          "': sketch ordering columns are out of the oracle's scope");
    }
    ref->ordering_columns_.push_back(idx);
  }
  return ref;
}

void ReferenceLat::Insert(const void* record, int64_t now_micros) {
  Row key;
  key.reserve(group_getters_.size());
  for (AttributeGetter getter : group_getters_) key.push_back(getter(record));
  Entry entry;
  entry.now_micros = now_micros;
  entry.values.reserve(agg_getters_.size());
  for (AttributeGetter getter : agg_getters_) {
    entry.values.push_back(getter != nullptr ? getter(record)
                                             : Value::Int(1));
  }
  groups_[std::move(key)].entries.push_back(std::move(entry));
  EvictOverBudget(now_micros);
}

Value ReferenceLat::AggValueFor(const Group& group, size_t agg,
                                int64_t now_micros) const {
  const LatAggFunc func = spec_.aggregates[agg].func;
  const bool aging = spec_.aggregates[agg].aging;

  int64_t count = 0;
  double sum = 0, sumsq = 0;
  Value min, max, first, last;
  bool any = false;

  if (!aging) {
    for (const Entry& e : group.entries) {
      const Value& v = e.values[agg];
      ++count;
      if (v.is_numeric()) {
        const double d = v.AsDouble();
        sum += d;
        sumsq += d * d;
      }
      if (!v.is_null()) {
        if (!any) first = v;
        if (!any || v.Compare(min) < 0) min = v;
        if (!any || v.Compare(max) > 0) max = v;
        any = true;
        last = v;
      }
    }
  } else {
    // Rebuild the §4.3 block decomposition the production LAT maintains
    // online: entries bucket into Δ-wide blocks by their fold timestamp, a
    // whole block either counts (its end lies past now - t) or not. Fold
    // per block first, then across blocks, matching the production LAT's
    // floating-point summation order.
    struct Block {
      int64_t start = 0;
      int64_t count = 0;
      double sum = 0, sumsq = 0;
      Value min, max;
      bool any = false;
    };
    std::vector<Block> blocks;
    for (const Entry& e : group.entries) {
      const int64_t start =
          e.now_micros - (e.now_micros % spec_.aging_block_micros);
      if (blocks.empty() || blocks.back().start != start) {
        Block b;
        b.start = start;
        blocks.push_back(std::move(b));
      }
      Block& b = blocks.back();
      const Value& v = e.values[agg];
      ++b.count;
      if (v.is_numeric()) {
        const double d = v.AsDouble();
        b.sum += d;
        b.sumsq += d * d;
      }
      if (!v.is_null()) {
        if (!b.any || v.Compare(b.min) < 0) b.min = v;
        if (!b.any || v.Compare(b.max) > 0) b.max = v;
        b.any = true;
      }
    }
    const int64_t horizon = now_micros - spec_.aging_window_micros;
    for (const Block& b : blocks) {
      if (b.start + spec_.aging_block_micros <= horizon) continue;
      count += b.count;
      sum += b.sum;
      sumsq += b.sumsq;
      if (b.any) {
        if (!any || b.min.Compare(min) < 0) min = b.min;
        if (!any || b.max.Compare(max) > 0) max = b.max;
        any = true;
      }
    }
  }

  switch (func) {
    case LatAggFunc::kCount:
      return Value::Int(count);
    case LatAggFunc::kSum:
      return count > 0 ? Value::Double(sum) : Value::Null();
    case LatAggFunc::kAvg:
      return count > 0 ? Value::Double(sum / static_cast<double>(count))
                       : Value::Null();
    case LatAggFunc::kStdev: {
      if (count < 2) return Value::Double(0);
      const double n = static_cast<double>(count);
      const double variance =
          std::max(0.0, (sumsq - sum * sum / n) / (n - 1));
      return Value::Double(std::sqrt(variance));
    }
    case LatAggFunc::kMin:
      return any ? min : Value::Null();
    case LatAggFunc::kMax:
      return any ? max : Value::Null();
    case LatAggFunc::kFirst:
      return first;
    case LatAggFunc::kLast:
      return last;
    case LatAggFunc::kQuantile: {
      // Exact rank-⌊q·(n−1)⌋ of the same multiset the sketch folds
      // (numeric, non-NaN); the differential oracle asserts the production
      // answer lands within the sketch's documented relative-error bound.
      std::vector<double> values;
      for (const Entry& e : group.entries) {
        const Value& v = e.values[agg];
        if (v.is_numeric() && !std::isnan(v.AsDouble())) {
          values.push_back(v.AsDouble());
        }
      }
      if (values.empty()) return Value::Null();
      std::sort(values.begin(), values.end());
      const double q = std::clamp(spec_.aggregates[agg].quantile, 0.0, 1.0);
      const size_t rank = static_cast<size_t>(std::floor(
          q * static_cast<double>(values.size() - 1)));
      return Value::Double(values[rank]);
    }
    case LatAggFunc::kDistinct: {
      // Exact cardinality under the sketch's own equality (hash collisions
      // excepted): DistinctValueHash canonicalizes -0.0 and integral
      // doubles exactly like the production HLL fold.
      std::vector<uint64_t> hashes;
      for (const Entry& e : group.entries) {
        const Value& v = e.values[agg];
        if (!v.is_null()) hashes.push_back(DistinctValueHash(v));
      }
      std::sort(hashes.begin(), hashes.end());
      hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
      return Value::Int(static_cast<int64_t>(hashes.size()));
    }
  }
  return Value::Null();
}

bool ReferenceLat::LookupByKey(const Row& group_key, int64_t now_micros,
                               Row* out) const {
  const auto it = groups_.find(group_key);
  if (it == groups_.end()) return false;
  Row row = group_key;
  row.reserve(group_key.size() + spec_.aggregates.size());
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    row.push_back(AggValueFor(it->second, a, now_micros));
  }
  *out = std::move(row);
  return true;
}

std::vector<Row> ReferenceLat::LiveKeys() const {
  std::vector<Row> keys;
  keys.reserve(groups_.size());
  for (const auto& [key, _] : groups_) keys.push_back(key);
  return keys;
}

Row ReferenceLat::OrderingKeyFor(const Row& key, const Group& group,
                                 int64_t now_micros) const {
  Row out;
  out.reserve(ordering_columns_.size());
  const size_t groups = spec_.group_by.size();
  for (int col : ordering_columns_) {
    const size_t c = static_cast<size_t>(col);
    if (c < groups) {
      out.push_back(key[c]);
    } else {
      out.push_back(AggValueFor(group, c - groups, now_micros));
    }
  }
  return out;
}

bool ReferenceLat::LessImportant(const Row& a, const Row& b) const {
  for (size_t i = 0; i < spec_.ordering.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c == 0) continue;
    return spec_.ordering[i].descending ? c < 0 : c > 0;
  }
  return false;
}

void ReferenceLat::EvictOverBudget(int64_t now_micros) {
  if (spec_.max_rows == 0) return;
  while (groups_.size() > spec_.max_rows) {
    const Row* victim = nullptr;
    Row victim_key_row;
    for (const auto& [key, group] : groups_) {
      Row ordering = OrderingKeyFor(key, group, now_micros);
      if (victim == nullptr || LessImportant(ordering, victim_key_row)) {
        victim = &key;
        victim_key_row = std::move(ordering);
      }
    }
    groups_.erase(*victim);
  }
}

}  // namespace sqlcm::cm
