// Timer subsystem (paper §5.1, Appendix A): named Timer objects that raise
// Timer.Alarm events for rules whose condition cannot be tied to a system
// event. Timers are configured with the Set(seconds, number_alarms) action:
// 0 alarms disables a timer, a negative count makes it fire forever.
#ifndef SQLCM_SQLCM_TIMER_H_
#define SQLCM_SQLCM_TIMER_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sqlcm/schema.h"

namespace sqlcm::cm {

class TimerManager {
 public:
  /// Invoked once per due timer, outside the registry mutex; the record is
  /// a snapshot (with now_secs filled). The callback may call Set().
  using AlarmCallback = std::function<void(const TimerRecord& timer)>;

  TimerManager(common::Clock* clock, AlarmCallback callback)
      : clock_(clock), callback_(std::move(callback)) {}
  ~TimerManager() { Stop(); }
  TimerManager(const TimerManager&) = delete;
  TimerManager& operator=(const TimerManager&) = delete;

  /// Registers a timer object (initially disabled).
  common::Status CreateTimer(const std::string& name);

  /// The Set action: arms `name` to fire every `interval_micros`,
  /// `repeats` times (0 disables, negative = forever).
  common::Status Set(const std::string& name, int64_t interval_micros,
                     int64_t repeats);

  bool IsTimerName(std::string_view name) const;

  /// Snapshot of all timers (Timer-class iteration in rules).
  std::vector<TimerRecord> Snapshot(int64_t now_micros) const;

  /// Fires all due timers; returns how many fired. Called by the
  /// background thread and directly by tests driving a MockClock.
  size_t Poll(int64_t now_micros);

  /// Starts/stops the background polling thread (1ms real-time cadence;
  /// reads the configured Clock, so MockClock-driven tests also work).
  void Start();
  void Stop();

  /// When set, every due timer records (now - scheduled due time) — the
  /// firing drift — into the histogram. Not owned; must outlive polling.
  void set_drift_histogram(obs::LatencyHistogram* histogram) {
    drift_histogram_ = histogram;
  }

 private:
  common::Clock* clock_;
  AlarmCallback callback_;

  mutable std::mutex mutex_;
  std::vector<TimerRecord> timers_;
  obs::LatencyHistogram* drift_histogram_ = nullptr;

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_TIMER_H_
