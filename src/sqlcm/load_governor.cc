#include "sqlcm/load_governor.h"

#include <algorithm>

namespace sqlcm::cm {

void LoadGovernor::RecordHook(int64_t hook_micros, int64_t now_micros) {
  if (options_.overhead_budget <= 0.0) return;
  busy_micros_.fetch_add(hook_micros, std::memory_order_relaxed);
  hook_count_.fetch_add(1, std::memory_order_relaxed);

  int64_t start = window_start_micros_.load(std::memory_order_relaxed);
  if (start == 0) {
    window_start_micros_.compare_exchange_strong(start, now_micros,
                                                 std::memory_order_relaxed);
    return;
  }
  const int64_t elapsed = now_micros - start;
  if (elapsed < options_.window_micros) return;

  // Window is full. One thread rolls it; others carry on.
  std::unique_lock<std::mutex> lock(roll_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  start = window_start_micros_.load(std::memory_order_relaxed);
  if (now_micros - start < options_.window_micros) return;  // already rolled

  const int64_t busy = busy_micros_.exchange(0, std::memory_order_relaxed);
  const int64_t hooks = hook_count_.exchange(0, std::memory_order_relaxed);
  window_start_micros_.store(now_micros, std::memory_order_relaxed);

  const int64_t wall = std::max<int64_t>(now_micros - start, 1);
  const double fraction = static_cast<double>(busy) / static_cast<double>(wall);
  last_fraction_ = fraction;
  if (hooks < options_.min_hooks_per_window) return;
  if (forced_.load(std::memory_order_relaxed)) return;

  const int current = level_.load(std::memory_order_relaxed);
  if (fraction > options_.overhead_budget && current < options_.max_level) {
    lock.unlock();
    TransitionTo(current + 1, /*count=*/true);
  } else if (fraction < options_.overhead_budget * options_.recover_ratio &&
             current > kLevelFull) {
    lock.unlock();
    TransitionTo(current - 1, /*count=*/true);
  }
}

void LoadGovernor::TransitionTo(int new_level, bool count) {
  new_level = std::clamp(new_level, static_cast<int>(kLevelFull),
                         options_.max_level);
  const int old_level = level_.exchange(new_level, std::memory_order_relaxed);
  if (old_level == new_level) return;
  if (count) {
    if (new_level > old_level) {
      raises_.fetch_add(1, std::memory_order_relaxed);
    } else {
      drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (listener_) listener_(old_level, new_level);
}

void LoadGovernor::ForceLevel(int level) {
  forced_.store(true, std::memory_order_relaxed);
  TransitionTo(level, /*count=*/true);
}

void LoadGovernor::ClearForce() {
  forced_.store(false, std::memory_order_relaxed);
}

double LoadGovernor::last_overhead_fraction() const {
  std::lock_guard<std::mutex> lock(roll_mutex_);
  return last_fraction_;
}

}  // namespace sqlcm::cm
