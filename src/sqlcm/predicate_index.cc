#include "sqlcm/predicate_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/string_util.h"
#include "sql/ast.h"

namespace sqlcm::cm {

namespace {

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsComparison(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kNe:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

sql::BinaryOp MirrorComparison(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt: return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe: return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt: return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe: return sql::BinaryOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

void AppendCanonical(const CmExpr& e, std::string* out) {
  switch (e.kind) {
    case CmExpr::Kind::kLiteral:
      if (e.literal.is_string()) {
        *out += '\'';
        *out += e.literal.ToString();
        *out += '\'';
      } else {
        *out += e.literal.ToString();
      }
      return;
    case CmExpr::Kind::kAttrRef:
      if (e.cls == MonitoredClass::kEvicted) {
        // Column index is relative to the event's LAT; rules on Lat.Evict
        // events bypass the index, so this spelling is only reached by
        // direct CanonicalPredicateText calls (tests/tools).
        *out += "Evicted.#";
        *out += std::to_string(e.attr_index);
        return;
      }
      *out += MonitoredClassName(e.cls);
      *out += '.';
      *out += ObjectSchema::Get()
                  .attributes(e.cls)[static_cast<size_t>(e.attr_index)]
                  .name;
      return;
    case CmExpr::Kind::kLatColRef:
      *out += e.lat->lower_name();
      *out += '.';
      *out += e.lat->column_names()[static_cast<size_t>(e.lat_col)];
      return;
    case CmExpr::Kind::kUnary:
      *out += static_cast<sql::UnaryOp>(e.unary_op) == sql::UnaryOp::kNot
                  ? "NOT ("
                  : "-(";
      AppendCanonical(*e.left, out);
      *out += ')';
      return;
    case CmExpr::Kind::kBinary: {
      auto op = static_cast<sql::BinaryOp>(e.binary_op);
      const CmExpr* l = e.left.get();
      const CmExpr* r = e.right.get();
      // `5 < Query.Duration` and `Query.Duration > 5` are one predicate.
      // Safe for comparisons only: both operands are always evaluated, so
      // mirroring cannot change which errors or NULLs surface. AND/OR (and
      // arithmetic) operand order is semantically significant and is never
      // normalized.
      if (IsComparison(op) && l->kind == CmExpr::Kind::kLiteral &&
          r->kind != CmExpr::Kind::kLiteral) {
        std::swap(l, r);
        op = MirrorComparison(op);
      }
      *out += '(';
      AppendCanonical(*l, out);
      *out += ' ';
      *out += sql::BinaryOpName(op);
      *out += ' ';
      AppendCanonical(*r, out);
      *out += ')';
      return;
    }
  }
}

/// Evaluates one conjunct under ctx and classifies its three-valued
/// outcome. Mirrors the naive AND-chain evaluator exactly:
///   FALSE            → kFalse (naive short-circuits here)
///   NULL / missing   → kNull  (naive keeps walking, rejects at the end)
///   TRUE, row missing→ kNull  (the sticky lat_row_missing flag rejects a
///                              boolean-TRUE condition per §5.2)
///   error / non-bool → kError (caller re-runs the rule naively so error
///                              text, stats and breaker accounting match
///                              bit-for-bit; for the one non-bool-with-
///                              missing single-conjunct corner the naive
///                              rerun yields the FALSE the §5.2 rule
///                              demands rather than an error)
PredOutcome EvaluatePredicate(const IndexedPredicate& pred, EvalContext* ctx) {
  if (pred.is_fast) {
    return EvalFastAtom(pred.atom, *ctx) ? PredOutcome::kPass
                                         : PredOutcome::kFalse;
  }
  ctx->lat_row_missing = false;
  auto result = pred.expr->Eval(ctx);
  const bool missing = ctx->lat_row_missing;
  ctx->lat_row_missing = false;
  if (!result.ok()) return PredOutcome::kError;
  const common::Value& v = *result;
  if (v.is_bool()) {
    if (!v.bool_value()) return PredOutcome::kFalse;
    return missing ? PredOutcome::kNull : PredOutcome::kPass;
  }
  if (v.is_null()) return PredOutcome::kNull;
  return PredOutcome::kError;
}

/// UCB1 explore/exploit score: expected rejections per nanosecond, plus an
/// exploration bonus that decays as the predicate accumulates pulls
/// (FrancoDB's QueryPlanOptimizer shape, adapted to condition ordering).
double PredicateScore(const IndexedPredicate& pred, double ln_total) {
  const PredicateStats& s = *pred.stats;
  const double n =
      static_cast<double>(s.evals.load(std::memory_order_relaxed));
  double bonus = std::sqrt(2.0 * ln_total / std::max(n, 1.0));
  if (bonus > 1.0) bonus = 1.0;  // cap: never fully dominates observation
  double cost =
      static_cast<double>(s.cost_ewma_ns.load(std::memory_order_relaxed));
  if (cost <= 0.0) cost = 100.0;  // unmeasured: assume a cheap comparison
  return (1.0 - s.PassRate() + bonus) / cost;
}

}  // namespace

std::string CanonicalPredicateText(const CmExpr& expr) {
  std::string out;
  AppendCanonical(expr, &out);
  return out;
}

void CollectConjuncts(const CmExpr* expr, std::vector<const CmExpr*>* out) {
  if (expr->kind == CmExpr::Kind::kBinary &&
      static_cast<sql::BinaryOp>(expr->binary_op) == sql::BinaryOp::kAnd) {
    CollectConjuncts(expr->left.get(), out);
    CollectConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

void BuildPredicateIndex(
    const std::vector<std::shared_ptr<const CompiledRule>>& rules,
    bool deferred_lane, PredicateStatsRegistry* registry,
    PredicateIndex* out) {
  out->preds.clear();
  out->entries.clear();
  out->any_indexed = false;
  out->entries.resize(rules.size());
  std::unordered_map<uint64_t, uint32_t> by_hash;
  std::vector<const CmExpr*> conjuncts;
  for (size_t i = 0; i < rules.size(); ++i) {
    const std::shared_ptr<const CompiledRule>& rule = rules[i];
    IndexedRule& entry = out->entries[i];
    for (const CompiledAction& action : rule->actions) {
      // On the deferred lane Inserts are buffered in the batch's lat_sink
      // and flushed after every rule ran, so only Reset mutates mid-event.
      if (action.kind == ActionKind::kReset ||
          (action.kind == ActionKind::kInsert && !deferred_lane)) {
        entry.mutates_lats = true;
      }
    }
    // Unbound-class iteration re-evaluates the condition per object
    // binding, and Lat.Evict conditions read the evicted row (whose column
    // indexes are LAT-relative, not canonicalizable across rules); both
    // keep the naive path.
    if (!rule->iterate_classes.empty() ||
        rule->event.kind == EventKind::kLatEvict) {
      continue;
    }
    entry.indexed = true;
    out->any_indexed = true;
    if (rule->condition == nullptr) continue;  // unconditioned: always fires
    conjuncts.clear();
    CollectConjuncts(rule->condition.get(), &conjuncts);
    entry.preds.reserve(conjuncts.size());
    for (const CmExpr* conjunct : conjuncts) {
      std::string text = CanonicalPredicateText(*conjunct);
      const uint64_t hash = common::Fnv1a64(text);
      auto [it, inserted] =
          by_hash.try_emplace(hash, static_cast<uint32_t>(out->preds.size()));
      uint32_t id = it->second;
      if (!inserted && out->preds[id].text != text) {
        // 64-bit hash collision between distinct predicates: keep them
        // separate (unshared, fresh stats) rather than merge semantics.
        id = static_cast<uint32_t>(out->preds.size());
        inserted = true;
      }
      if (inserted) {
        IndexedPredicate pred;
        pred.expr = conjunct;
        pred.owner = rule;
        pred.is_fast = TryCompileFastAtom(*conjunct, &pred.atom);
        std::vector<const Lat*> lats;
        conjunct->CollectLats(&lats);
        pred.reads_lats = !lats.empty();
        pred.text = std::move(text);
        pred.hash = hash;
        auto [sit, stats_inserted] = registry->try_emplace(hash, nullptr);
        if (stats_inserted) sit->second = std::make_shared<PredicateStats>();
        pred.stats = sit->second;
        out->preds.push_back(std::move(pred));
      }
      entry.preds.push_back(id);
      ++out->preds[id].subscribers;
    }
  }
}

void ReorderPredicateIndex(PredicateIndex* index) {
  if (index->preds.empty()) return;
  uint64_t total = 1;
  for (const IndexedPredicate& pred : index->preds) {
    total += pred.stats->evals.load(std::memory_order_relaxed);
  }
  const double ln_total = std::log(static_cast<double>(total));
  std::vector<double> score(index->preds.size());
  for (size_t i = 0; i < index->preds.size(); ++i) {
    score[i] = PredicateScore(index->preds[i], ln_total);
  }
  for (IndexedRule& entry : index->entries) {
    if (entry.preds.size() > 1) {
      std::stable_sort(entry.preds.begin(), entry.preds.end(),
                       [&score](uint32_t a, uint32_t b) {
                         return score[a] > score[b];
                       });
    }
  }
  std::vector<uint32_t> order(index->preds.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&score](uint32_t a, uint32_t b) {
    return score[a] > score[b];
  });
  for (size_t r = 0; r < order.size(); ++r) {
    index->preds[order[r]].stats->rank.store(static_cast<int64_t>(r),
                                             std::memory_order_relaxed);
  }
}

IndexVerdict EvalIndexedCondition(const PredicateIndex& index,
                                  const IndexedRule& entry, bool strict_order,
                                  EvalContext* ctx, PredicateMemo* memo,
                                  PredWalkCounters* counters) {
  bool saw_null = false;
  for (uint32_t id : entry.preds) {
    PredOutcome outcome = memo->Get(id);
    if (outcome != PredOutcome::kUnknown) {
      ++counters->memo_hits;
    } else {
      const IndexedPredicate& pred = index.preds[id];
      PredicateStats& stats = *pred.stats;
      const uint64_t n = stats.evals.fetch_add(1, std::memory_order_relaxed);
      const bool timed = (n & 0xF) == 0;  // 1-in-16 cost sampling
      const uint64_t t0 = timed ? NowNanos() : 0;
      outcome = EvaluatePredicate(pred, ctx);
      if (timed) {
        const uint64_t dt = NowNanos() - t0;
        const uint64_t prev =
            stats.cost_ewma_ns.load(std::memory_order_relaxed);
        stats.cost_ewma_ns.store(prev == 0 ? dt : (prev * 7 + dt) / 8,
                                 std::memory_order_relaxed);
      }
      if (outcome == PredOutcome::kPass) {
        stats.passes.fetch_add(1, std::memory_order_relaxed);
      }
      memo->Set(id, outcome);
      ++counters->evals;
    }
    switch (outcome) {
      case PredOutcome::kPass:
        break;
      case PredOutcome::kFalse:
        return IndexVerdict::kReject;  // naive short-circuits on FALSE too
      case PredOutcome::kNull:
        if (!strict_order) return IndexVerdict::kReject;
        // Strict mode mirrors naive AND: NULL does not short-circuit (a
        // later conjunct may still raise the error naive would report).
        saw_null = true;
        break;
      case PredOutcome::kError:
        return IndexVerdict::kError;
      case PredOutcome::kUnknown:
        break;  // unreachable: Set() never stores kUnknown
    }
  }
  return saw_null ? IndexVerdict::kReject : IndexVerdict::kFire;
}

}  // namespace sqlcm::cm
