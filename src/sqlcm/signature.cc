#include "sqlcm/signature.h"

namespace sqlcm::cm {

uint64_t HashSignature(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

Signature LogicalQuerySignature(const exec::LogicalPlan& plan) {
  Signature sig;
  sig.text.reserve(256);
  plan.AppendSignature(/*wildcard_constants=*/true, &sig.text);
  sig.hash = HashSignature(sig.text);
  return sig;
}

Signature PhysicalPlanSignature(const exec::PhysicalPlan& plan) {
  Signature sig;
  sig.text.reserve(256);
  plan.AppendSignature(/*wildcard_constants=*/true, &sig.text);
  sig.hash = HashSignature(sig.text);
  return sig;
}

Signature TransactionSignature(const std::vector<uint64_t>& query_hashes) {
  Signature sig;
  sig.text.reserve(query_hashes.size() * 18 + 2);
  sig.text += "[";
  for (size_t i = 0; i < query_hashes.size(); ++i) {
    if (i > 0) sig.text += ",";
    sig.text += std::to_string(query_hashes[i]);
  }
  sig.text += "]";
  sig.hash = HashSignature(sig.text);
  return sig;
}

}  // namespace sqlcm::cm
