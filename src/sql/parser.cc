#include "sql/parser.h"

#include <array>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace sqlcm::sql {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;

namespace {

constexpr std::array<std::string_view, 38> kKeywords = {
    "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",     "ORDER",  "ASC",
    "DESC",   "LIMIT",  "JOIN",   "INNER",   "ON",     "AS",     "INSERT",
    "INTO",   "VALUES", "UPDATE", "SET",     "DELETE", "CREATE", "TABLE",
    "INDEX",  "DROP",   "PRIMARY", "KEY",    "BEGIN",  "COMMIT", "ROLLBACK",
    "EXEC",   "EXECUTE", "AND",   "OR",      "NOT",    "TRANSACTION",
    "BETWEEN", "IN",    "LIKE",   "DISTINCT",
};

}  // namespace

bool Parser::IsKeyword(std::string_view ident) {
  for (std::string_view kw : kKeywords) {
    if (EqualsIgnoreCase(ident, kw)) return true;
  }
  // Literal keywords usable in expression position.
  return EqualsIgnoreCase(ident, "NULL") || EqualsIgnoreCase(ident, "TRUE") ||
         EqualsIgnoreCase(ident, "FALSE");
}

bool Parser::Match(TokenKind kind) {
  if (!Check(kind)) return false;
  ++pos_;
  return true;
}

bool Parser::CheckKeyword(std::string_view kw) const {
  return Peek().kind == TokenKind::kIdentifier &&
         EqualsIgnoreCase(Peek().text, kw);
}

bool Parser::MatchKeyword(std::string_view kw) {
  if (!CheckKeyword(kw)) return false;
  ++pos_;
  return true;
}

Status Parser::ExpectKeyword(std::string_view kw) {
  if (MatchKeyword(kw)) return Status::OK();
  return Status::ParseError("expected '" + std::string(kw) + "' at offset " +
                            std::to_string(Peek().offset) + ", found '" +
                            Peek().text + "'");
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (Match(kind)) return Status::OK();
  return Status::ParseError(std::string("expected ") + what + " at offset " +
                            std::to_string(Peek().offset) + ", found " +
                            TokenKindName(Peek().kind));
}

Status Parser::ErrorHere(const std::string& expected) const {
  return Status::ParseError("expected " + expected + " at offset " +
                            std::to_string(Peek().offset) + ", found " +
                            TokenKindName(Peek().kind) +
                            (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement(
    std::string_view text) {
  SQLCM_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser parser(std::move(tokens));
  SQLCM_ASSIGN_OR_RETURN(auto stmt, parser.ParseOneStatement());
  parser.Match(TokenKind::kSemicolon);
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("end of statement");
  }
  return stmt;
}

Result<std::vector<std::unique_ptr<Statement>>> Parser::ParseScript(
    std::string_view text) {
  SQLCM_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser parser(std::move(tokens));
  std::vector<std::unique_ptr<Statement>> out;
  while (!parser.Check(TokenKind::kEof)) {
    SQLCM_ASSIGN_OR_RETURN(auto stmt, parser.ParseOneStatement());
    out.push_back(std::move(stmt));
    if (!parser.Match(TokenKind::kSemicolon)) break;
  }
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("';' or end of script");
  }
  return out;
}

Result<std::unique_ptr<Expr>> Parser::ParseExpression(std::string_view text) {
  SQLCM_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser parser(std::move(tokens));
  SQLCM_ASSIGN_OR_RETURN(auto expr, parser.ParseExpr());
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("end of expression");
  }
  return expr;
}

Result<std::unique_ptr<Statement>> Parser::ParseOneStatement() {
  if (CheckKeyword("SELECT")) return ParseSelect();
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("DROP")) return ParseDrop();
  if (MatchKeyword("BEGIN")) {
    MatchKeyword("TRANSACTION");
    return std::unique_ptr<Statement>(std::make_unique<BeginStmt>());
  }
  if (MatchKeyword("COMMIT")) {
    MatchKeyword("TRANSACTION");
    return std::unique_ptr<Statement>(std::make_unique<CommitStmt>());
  }
  if (MatchKeyword("ROLLBACK")) {
    MatchKeyword("TRANSACTION");
    return std::unique_ptr<Statement>(std::make_unique<RollbackStmt>());
  }
  if (CheckKeyword("EXEC") || CheckKeyword("EXECUTE")) return ParseExec();
  return ErrorHere("a statement");
}

Result<std::string> Parser::ParseIdent(const char* what) {
  if (Peek().kind != TokenKind::kIdentifier || IsKeyword(Peek().text)) {
    return ErrorHere(what);
  }
  return Advance().text;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  SQLCM_ASSIGN_OR_RETURN(ref.table, ParseIdent("table name"));
  if (MatchKeyword("AS")) {
    SQLCM_ASSIGN_OR_RETURN(ref.alias, ParseIdent("table alias"));
  } else if (Peek().kind == TokenKind::kIdentifier && !IsKeyword(Peek().text)) {
    ref.alias = Advance().text;
  }
  if (ref.alias.empty()) ref.alias = ref.table;
  return ref;
}

Result<std::unique_ptr<Statement>> Parser::ParseSelect() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("DISTINCT");

  do {
    SelectItem item;
    if (Match(TokenKind::kStar)) {
      item.star = true;
    } else {
      SQLCM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        SQLCM_ASSIGN_OR_RETURN(item.alias, ParseIdent("column alias"));
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !IsKeyword(Peek().text)) {
        item.alias = Advance().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  SQLCM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  SQLCM_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());

  while (CheckKeyword("JOIN") || CheckKeyword("INNER")) {
    MatchKeyword("INNER");
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    JoinClause join;
    SQLCM_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SQLCM_ASSIGN_OR_RETURN(join.on, ParseExpr());
    stmt->joins.push_back(std::move(join));
  }

  if (MatchKeyword("WHERE")) {
    SQLCM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      SQLCM_ASSIGN_OR_RETURN(auto e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
  }
  if (MatchKeyword("ORDER")) {
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      SQLCM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kInteger) return ErrorHere("integer limit");
    stmt->limit = Advance().int_value;
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));

  if (Match(TokenKind::kLParen)) {
    do {
      SQLCM_ASSIGN_OR_RETURN(auto col, ParseIdent("column name"));
      stmt->columns.push_back(std::move(col));
    } while (Match(TokenKind::kComma));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  }

  SQLCM_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<std::unique_ptr<Expr>> row;
    do {
      SQLCM_ASSIGN_OR_RETURN(auto e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenKind::kComma));
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStmt>();
  SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    UpdateStmt::Assignment assign;
    SQLCM_ASSIGN_OR_RETURN(assign.column, ParseIdent("column name"));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='"));
    SQLCM_ASSIGN_OR_RETURN(assign.value, ParseExpr());
    stmt->assignments.push_back(std::move(assign));
  } while (Match(TokenKind::kComma));
  if (MatchKeyword("WHERE")) {
    SQLCM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseDelete() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));
  if (MatchKeyword("WHERE")) {
    SQLCM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<CreateTableStmt>();
    SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    do {
      if (CheckKeyword("PRIMARY")) {
        Advance();
        SQLCM_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        do {
          SQLCM_ASSIGN_OR_RETURN(auto col, ParseIdent("key column"));
          stmt->primary_key.push_back(std::move(col));
        } while (Match(TokenKind::kComma));
        SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      } else {
        ColumnDef def;
        SQLCM_ASSIGN_OR_RETURN(def.name, ParseIdent("column name"));
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorHere("column type");
        }
        def.type_name = common::ToUpper(Advance().text);
        // Accept and ignore a length spec: VARCHAR(32).
        if (Match(TokenKind::kLParen)) {
          if (Peek().kind != TokenKind::kInteger) {
            return ErrorHere("type length");
          }
          Advance();
          SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        }
        stmt->columns.push_back(std::move(def));
      }
    } while (Match(TokenKind::kComma));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStmt>();
    SQLCM_ASSIGN_OR_RETURN(stmt->index, ParseIdent("index name"));
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    do {
      SQLCM_ASSIGN_OR_RETURN(auto col, ParseIdent("index column"));
      stmt->columns.push_back(std::move(col));
    } while (Match(TokenKind::kComma));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  return ErrorHere("'TABLE' or 'INDEX'");
}

Result<std::unique_ptr<Statement>> Parser::ParseDrop() {
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  SQLCM_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStmt>();
  SQLCM_ASSIGN_OR_RETURN(stmt->table, ParseIdent("table name"));
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseExec() {
  Advance();  // EXEC / EXECUTE
  auto stmt = std::make_unique<ExecProcedureStmt>();
  SQLCM_ASSIGN_OR_RETURN(stmt->procedure, ParseIdent("procedure name"));
  if (!Check(TokenKind::kEof) && !Check(TokenKind::kSemicolon)) {
    do {
      SQLCM_ASSIGN_OR_RETURN(auto e, ParseExpr());
      stmt->args.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

// --------------------------- expressions ----------------------------------

Result<std::unique_ptr<Expr>> Parser::ParseExpr() { return ParseOr(); }

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  SQLCM_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    SQLCM_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  SQLCM_ASSIGN_OR_RETURN(auto lhs, ParseNot());
  while (MatchKeyword("AND")) {
    SQLCM_ASSIGN_OR_RETURN(auto rhs, ParseNot());
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    SQLCM_ASSIGN_OR_RETURN(auto operand, ParseNot());
    return Expr::Unary(UnaryOp::kNot, std::move(operand));
  }
  return ParseCmp();
}

Result<std::unique_ptr<Expr>> Parser::ParseCmp() {
  SQLCM_ASSIGN_OR_RETURN(auto lhs, ParseAdd());

  // Postfix predicate forms: [NOT] BETWEEN / IN / LIKE. BETWEEN and IN are
  // desugared at parse time; LIKE becomes a dedicated operator.
  const bool negated = CheckKeyword("NOT");
  if (negated) {
    // Look ahead: NOT must be followed by BETWEEN/IN/LIKE to bind here
    // (otherwise it belongs to ParseNot and we must not consume it).
    const Token& next = tokens_[pos_ + 1];
    const bool postfix =
        next.kind == TokenKind::kIdentifier &&
        (EqualsIgnoreCase(next.text, "BETWEEN") ||
         EqualsIgnoreCase(next.text, "IN") ||
         EqualsIgnoreCase(next.text, "LIKE"));
    if (!postfix) return lhs;
    Advance();  // NOT
  }
  auto negate = [&](std::unique_ptr<Expr> e) {
    return negated ? Expr::Unary(UnaryOp::kNot, std::move(e)) : std::move(e);
  };
  if (MatchKeyword("BETWEEN")) {
    SQLCM_ASSIGN_OR_RETURN(auto lo, ParseAdd());
    SQLCM_RETURN_IF_ERROR(ExpectKeyword("AND"));
    SQLCM_ASSIGN_OR_RETURN(auto hi, ParseAdd());
    auto ge = Expr::Binary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
    auto le = Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    return negate(Expr::Binary(BinaryOp::kAnd, std::move(ge), std::move(le)));
  }
  if (MatchKeyword("IN")) {
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::unique_ptr<Expr> chain;
    do {
      SQLCM_ASSIGN_OR_RETURN(auto item, ParseExpr());
      auto eq = Expr::Binary(BinaryOp::kEq, lhs->Clone(), std::move(item));
      chain = chain == nullptr
                  ? std::move(eq)
                  : Expr::Binary(BinaryOp::kOr, std::move(chain),
                                 std::move(eq));
    } while (Match(TokenKind::kComma));
    SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return negate(std::move(chain));
  }
  if (MatchKeyword("LIKE")) {
    SQLCM_ASSIGN_OR_RETURN(auto pattern, ParseAdd());
    return negate(
        Expr::Binary(BinaryOp::kLike, std::move(lhs), std::move(pattern)));
  }
  if (negated) {
    return ErrorHere("BETWEEN, IN or LIKE after NOT");
  }

  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = BinaryOp::kEq; break;
    case TokenKind::kNe: op = BinaryOp::kNe; break;
    case TokenKind::kLt: op = BinaryOp::kLt; break;
    case TokenKind::kLe: op = BinaryOp::kLe; break;
    case TokenKind::kGt: op = BinaryOp::kGt; break;
    case TokenKind::kGe: op = BinaryOp::kGe; break;
    default:
      return lhs;
  }
  Advance();
  SQLCM_ASSIGN_OR_RETURN(auto rhs, ParseAdd());
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<std::unique_ptr<Expr>> Parser::ParseAdd() {
  SQLCM_ASSIGN_OR_RETURN(auto lhs, ParseMul());
  for (;;) {
    BinaryOp op;
    if (Check(TokenKind::kPlus)) op = BinaryOp::kAdd;
    else if (Check(TokenKind::kMinus)) op = BinaryOp::kSub;
    else return lhs;
    Advance();
    SQLCM_ASSIGN_OR_RETURN(auto rhs, ParseMul());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<std::unique_ptr<Expr>> Parser::ParseMul() {
  SQLCM_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Check(TokenKind::kStar)) op = BinaryOp::kMul;
    else if (Check(TokenKind::kSlash)) op = BinaryOp::kDiv;
    else if (Check(TokenKind::kPercent)) op = BinaryOp::kMod;
    else return lhs;
    Advance();
    SQLCM_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    SQLCM_ASSIGN_OR_RETURN(auto operand, ParseUnary());
    return Expr::Unary(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kInteger: {
      auto e = Expr::Literal(common::Value::Int(tok.int_value));
      Advance();
      return e;
    }
    case TokenKind::kFloat: {
      auto e = Expr::Literal(common::Value::Double(tok.double_value));
      Advance();
      return e;
    }
    case TokenKind::kString: {
      auto e = Expr::Literal(common::Value::String(tok.text));
      Advance();
      return e;
    }
    case TokenKind::kParam: {
      auto e = Expr::Param(tok.text);
      Advance();
      return e;
    }
    case TokenKind::kLParen: {
      Advance();
      SQLCM_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    case TokenKind::kIdentifier: {
      if (EqualsIgnoreCase(tok.text, "NULL")) {
        Advance();
        return Expr::Literal(common::Value::Null());
      }
      if (EqualsIgnoreCase(tok.text, "TRUE")) {
        Advance();
        return Expr::Literal(common::Value::Bool(true));
      }
      if (EqualsIgnoreCase(tok.text, "FALSE")) {
        Advance();
        return Expr::Literal(common::Value::Bool(false));
      }
      if (IsKeyword(tok.text)) return ErrorHere("an expression");
      std::string first = Advance().text;
      // Function call?
      if (Match(TokenKind::kLParen)) {
        std::vector<std::unique_ptr<Expr>> args;
        bool star_arg = false;
        if (Match(TokenKind::kStar)) {
          star_arg = true;
        } else if (!Check(TokenKind::kRParen)) {
          do {
            SQLCM_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        SQLCM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return Expr::FuncCall(common::ToUpper(first), std::move(args),
                              star_arg);
      }
      // Qualified column?
      if (Match(TokenKind::kDot)) {
        SQLCM_ASSIGN_OR_RETURN(auto col, ParseIdent("column name"));
        return Expr::ColumnRef(std::move(first), std::move(col));
      }
      return Expr::ColumnRef("", std::move(first));
    }
    default:
      return ErrorHere("an expression");
  }
}

}  // namespace sqlcm::sql
