// Token vocabulary shared by the SQL lexer and parser.
#ifndef SQLCM_SQL_TOKEN_H_
#define SQLCM_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sqlcm::sql {

enum class TokenKind : uint8_t {
  kEof = 0,
  kIdentifier,  // unquoted name or keyword; parser matches case-insensitively
  kInteger,     // 123
  kFloat,       // 1.5, .5, 1e3
  kString,      // 'text' with '' escaping
  kParam,       // @name named parameter
  // punctuation / operators
  kComma,
  kLParen,
  kRParen,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // raw text (identifier/keyword/param name/string body)
  int64_t int_value = 0;   // kInteger
  double double_value = 0; // kFloat
  size_t offset = 0;       // byte offset in the input, for error messages
};

}  // namespace sqlcm::sql

#endif  // SQLCM_SQL_TOKEN_H_
