#include "sql/ast.h"

namespace sqlcm::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(common::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::ColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::Param(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParam;
  e->param_name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(lhs);
  e->right = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> Expr::FuncCall(std::string name,
                                     std::vector<std::unique_ptr<Expr>> args,
                                     bool star_arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  e->star_arg = star_arg;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->param_name = param_name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->func_name = func_name;
  e->star_arg = star_arg;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kParam:
      return "@" + param_name;
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNot ? "(NOT " : "(-") +
             left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpName(binary_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFuncCall: {
      std::string out = func_name + "(";
      if (star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace sqlcm::sql
