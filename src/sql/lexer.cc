#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sqlcm::sql {

using common::Result;
using common::Status;

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kParam: return "parameter";
    case TokenKind::kComma: return "','";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  pos_ = 0;
  for (;;) {
    // Skip whitespace and -- line comments.
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      } else if (Peek() == '-' && PeekAt(1) == '-') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
    if (AtEnd()) {
      Token eof;
      eof.kind = TokenKind::kEof;
      eof.offset = pos_;
      out.push_back(std::move(eof));
      return out;
    }
    SQLCM_RETURN_IF_ERROR(LexOne(&out));
  }
}

Status Lexer::LexOne(std::vector<Token>* out) {
  Token tok;
  tok.offset = pos_;
  const char c = Peek();

  auto single = [&](TokenKind kind) {
    tok.kind = kind;
    ++pos_;
  };

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (!AtEnd() && IsIdentCont(Peek())) ++pos_;
    tok.kind = TokenKind::kIdentifier;
    tok.text = std::string(input_.substr(start, pos_ - start));
  } else if (IsDigit(c) || (c == '.' && IsDigit(PeekAt(1)))) {
    size_t start = pos_;
    bool is_float = false;
    while (!AtEnd() && IsDigit(Peek())) ++pos_;
    if (!AtEnd() && Peek() == '.' && IsDigit(PeekAt(1))) {
      is_float = true;
      ++pos_;
      while (!AtEnd() && IsDigit(Peek())) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t mark = pos_;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!AtEnd() && IsDigit(Peek())) {
        is_float = true;
        while (!AtEnd() && IsDigit(Peek())) ++pos_;
      } else {
        pos_ = mark;  // 'e' belongs to a following identifier, not the number
      }
    }
    const std::string text(input_.substr(start, pos_ - start));
    if (is_float) {
      tok.kind = TokenKind::kFloat;
      tok.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.kind = TokenKind::kInteger;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    tok.text = text;
  } else if (c == '\'') {
    ++pos_;
    std::string body;
    for (;;) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      if (Peek() == '\'') {
        if (PeekAt(1) == '\'') {
          body += '\'';
          pos_ += 2;
        } else {
          ++pos_;
          break;
        }
      } else {
        body += Peek();
        ++pos_;
      }
    }
    tok.kind = TokenKind::kString;
    tok.text = std::move(body);
  } else if (c == '@') {
    ++pos_;
    if (AtEnd() || !IsIdentStart(Peek())) {
      return Status::ParseError("expected parameter name after '@' at offset " +
                                std::to_string(tok.offset));
    }
    size_t start = pos_;
    while (!AtEnd() && IsIdentCont(Peek())) ++pos_;
    tok.kind = TokenKind::kParam;
    tok.text = std::string(input_.substr(start, pos_ - start));
  } else {
    switch (c) {
      case ',': single(TokenKind::kComma); break;
      case '(': single(TokenKind::kLParen); break;
      case ')': single(TokenKind::kRParen); break;
      case '.': single(TokenKind::kDot); break;
      case ';': single(TokenKind::kSemicolon); break;
      case '*': single(TokenKind::kStar); break;
      case '+': single(TokenKind::kPlus); break;
      case '-': single(TokenKind::kMinus); break;
      case '/': single(TokenKind::kSlash); break;
      case '%': single(TokenKind::kPercent); break;
      case '=': single(TokenKind::kEq); break;
      case '<':
        if (PeekAt(1) == '=') {
          tok.kind = TokenKind::kLe;
          pos_ += 2;
        } else if (PeekAt(1) == '>') {
          tok.kind = TokenKind::kNe;
          pos_ += 2;
        } else {
          single(TokenKind::kLt);
        }
        break;
      case '>':
        if (PeekAt(1) == '=') {
          tok.kind = TokenKind::kGe;
          pos_ += 2;
        } else {
          single(TokenKind::kGt);
        }
        break;
      case '!':
        if (PeekAt(1) == '=') {
          tok.kind = TokenKind::kNe;
          pos_ += 2;
        } else {
          return Status::ParseError("unexpected character '!' at offset " +
                                    std::to_string(tok.offset));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(tok.offset));
    }
  }
  out->push_back(std::move(tok));
  return Status::OK();
}

}  // namespace sqlcm::sql
