// Recursive-descent parser for the engine's SQL subset.
//
// Grammar (keywords case-insensitive; [] optional, {} repetition):
//
//   script        := statement { ';' statement } [';']
//   statement     := select | insert | update | delete
//                  | create_table | create_index | drop_table
//                  | 'BEGIN' ['TRANSACTION'] | 'COMMIT' | 'ROLLBACK'
//                  | ('EXEC'|'EXECUTE') ident [expr {',' expr}]
//   select        := 'SELECT' ['DISTINCT'] select_item {',' select_item}
//                    'FROM' table_ref { 'JOIN' table_ref 'ON' expr }
//                    ['WHERE' expr]
//                    ['GROUP' 'BY' expr {',' expr}]
//                    ['ORDER' 'BY' expr ['ASC'|'DESC'] {',' ...}]
//                    ['LIMIT' integer]
//   select_item   := '*' | expr ['AS' ident | ident]
//   table_ref     := ident [ident]                      -- name [alias]
//   insert        := 'INSERT' 'INTO' ident ['(' ident {',' ident} ')']
//                    'VALUES' row { ',' row }
//   row           := '(' expr {',' expr} ')'
//   update        := 'UPDATE' ident 'SET' ident '=' expr {',' ...}
//                    ['WHERE' expr]
//   delete        := 'DELETE' 'FROM' ident ['WHERE' expr]
//   create_table  := 'CREATE' 'TABLE' ident '(' column_def {',' column_def}
//                    [',' 'PRIMARY' 'KEY' '(' ident {',' ident} ')'] ')'
//   column_def    := ident type_name
//   create_index  := 'CREATE' 'INDEX' ident 'ON' ident
//                    '(' ident {',' ident} ')'
//   drop_table    := 'DROP' 'TABLE' ident
//
//   expr          := or_expr
//   or_expr       := and_expr { 'OR' and_expr }
//   and_expr      := not_expr { 'AND' not_expr }
//   not_expr      := 'NOT' not_expr | cmp_expr
//   cmp_expr      := add_expr [ predicate_suffix ]
//   predicate_suffix :=
//                    ('='|'<>'|'!='|'<'|'<='|'>'|'>=') add_expr
//                  | ['NOT'] 'BETWEEN' add_expr 'AND' add_expr   -- desugared
//                  | ['NOT'] 'IN' '(' expr {',' expr} ')'        -- desugared
//                  | ['NOT'] 'LIKE' add_expr                     -- %, _ wildcards
//   add_expr      := mul_expr { ('+'|'-') mul_expr }
//   mul_expr      := unary_expr { ('*'|'/'|'%') unary_expr }
//   unary_expr    := '-' unary_expr | primary
//   primary       := literal | param | func_call | column_ref | '(' expr ')'
//   func_call     := ident '(' ('*' | [expr {',' expr}]) ')'
//   column_ref    := ident ['.' ident]
//   literal       := integer | float | string | 'NULL' | 'TRUE' | 'FALSE'
//   param         := '@' ident
//
// Not supported (documented scope cut, see DESIGN.md §7): subqueries, outer
// joins, HAVING, views.
#ifndef SQLCM_SQL_PARSER_H_
#define SQLCM_SQL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace sqlcm::sql {

class Parser {
 public:
  /// Parses a single statement; trailing ';' allowed; anything further is an
  /// error.
  static common::Result<std::unique_ptr<Statement>> ParseStatement(
      std::string_view text);

  /// Parses a ';'-separated script.
  static common::Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
      std::string_view text);

  /// Parses a standalone expression (used by tests and the rule language).
  static common::Result<std::unique_ptr<Expr>> ParseExpression(
      std::string_view text);

  /// True if `ident` is a reserved keyword (so it cannot be an alias).
  static bool IsKeyword(std::string_view ident);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  bool CheckKeyword(std::string_view kw) const;
  bool MatchKeyword(std::string_view kw);
  common::Status ExpectKeyword(std::string_view kw);
  common::Status Expect(TokenKind kind, const char* what);
  common::Status ErrorHere(const std::string& expected) const;

  common::Result<std::unique_ptr<Statement>> ParseOneStatement();
  common::Result<std::unique_ptr<Statement>> ParseSelect();
  common::Result<std::unique_ptr<Statement>> ParseInsert();
  common::Result<std::unique_ptr<Statement>> ParseUpdate();
  common::Result<std::unique_ptr<Statement>> ParseDelete();
  common::Result<std::unique_ptr<Statement>> ParseCreate();
  common::Result<std::unique_ptr<Statement>> ParseDrop();
  common::Result<std::unique_ptr<Statement>> ParseExec();
  common::Result<TableRef> ParseTableRef();
  common::Result<std::string> ParseIdent(const char* what);

  common::Result<std::unique_ptr<Expr>> ParseExpr();
  common::Result<std::unique_ptr<Expr>> ParseOr();
  common::Result<std::unique_ptr<Expr>> ParseAnd();
  common::Result<std::unique_ptr<Expr>> ParseNot();
  common::Result<std::unique_ptr<Expr>> ParseCmp();
  common::Result<std::unique_ptr<Expr>> ParseAdd();
  common::Result<std::unique_ptr<Expr>> ParseMul();
  common::Result<std::unique_ptr<Expr>> ParseUnary();
  common::Result<std::unique_ptr<Expr>> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sqlcm::sql

#endif  // SQLCM_SQL_PARSER_H_
