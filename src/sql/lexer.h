// Hand-written SQL tokenizer.
//
// Also reused (with the same token vocabulary) by the SQLCM rule-language
// parser in src/sqlcm/rule_parser.cc, which accepts a sub-grammar of SQL
// expressions.
#ifndef SQLCM_SQL_LEXER_H_
#define SQLCM_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace sqlcm::sql {

/// Tokenizes the entire input up front. Errors carry the byte offset.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Produces all tokens including a trailing kEof token.
  common::Result<std::vector<Token>> Tokenize();

 private:
  common::Status LexOne(std::vector<Token>* out);

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace sqlcm::sql

#endif  // SQLCM_SQL_LEXER_H_
