// Abstract syntax tree for the SQL subset understood by the engine.
//
// The grammar (documented in parser.h) covers what the paper's workloads
// and monitoring scenarios require: single-table and multi-way-join
// SELECTs with WHERE / GROUP BY / ORDER BY / LIMIT, DML, DDL, transaction
// control and stored-procedure invocation.
#ifndef SQLCM_SQL_AST_H_
#define SQLCM_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace sqlcm::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike,  // string pattern match ('%' any run, '_' any single char)
};
enum class UnaryOp : uint8_t { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

enum class ExprKind : uint8_t {
  kLiteral,    // 42, 1.5, 'abc', NULL, TRUE, FALSE
  kColumnRef,  // col or tbl.col
  kParam,      // @name
  kUnary,
  kBinary,
  kFuncCall,   // COUNT(*), SUM(x), scalar functions
};

/// Tagged-union expression node. Only the fields for `kind` are meaningful.
struct Expr {
  ExprKind kind;

  // kLiteral
  common::Value literal;

  // kColumnRef
  std::string table;   // optional qualifier (may be empty)
  std::string column;

  // kParam
  std::string param_name;

  // kUnary / kBinary
  UnaryOp unary_op{};
  BinaryOp binary_op{};
  std::unique_ptr<Expr> left;   // operand for unary
  std::unique_ptr<Expr> right;

  // kFuncCall
  std::string func_name;  // normalized upper-case
  bool star_arg = false;  // COUNT(*)
  std::vector<std::unique_ptr<Expr>> args;

  static std::unique_ptr<Expr> Literal(common::Value v);
  static std::unique_ptr<Expr> ColumnRef(std::string table, std::string column);
  static std::unique_ptr<Expr> Param(std::string name);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> FuncCall(std::string name,
                                        std::vector<std::unique_ptr<Expr>> args,
                                        bool star_arg);

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Parenthesized rendering, stable across equivalent parses; used in
  /// tests and diagnostics (signatures are computed from plans, not ASTs).
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kBegin,
  kCommit,
  kRollback,
  kExecProcedure,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  const StatementKind kind;
};

struct SelectItem {
  std::unique_ptr<Expr> expr;  // null for bare '*'
  std::string alias;           // may be empty
  bool star = false;
};

struct TableRef {
  std::string table;
  std::string alias;  // empty means use table name
};

struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> on;  // required (only inner joins supported)
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt final : Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}

  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  std::unique_ptr<Expr> where;            // may be null
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;                     // -1 means no limit
};

struct InsertStmt final : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}

  std::string table;
  std::vector<std::string> columns;  // empty = full schema order
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct UpdateStmt final : Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}

  struct Assignment {
    std::string column;
    std::unique_ptr<Expr> value;
  };

  std::string table;
  std::vector<Assignment> assignments;
  std::unique_ptr<Expr> where;  // may be null
};

struct DeleteStmt final : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}

  std::string table;
  std::unique_ptr<Expr> where;  // may be null
};

struct ColumnDef {
  std::string name;
  std::string type_name;  // resolved by the catalog layer (INT, FLOAT, ...)
};

struct CreateTableStmt final : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}

  std::string table;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;  // empty = implicit rowid key
};

struct CreateIndexStmt final : Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}

  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

struct DropTableStmt final : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}
  std::string table;
};

struct BeginStmt final : Statement {
  BeginStmt() : Statement(StatementKind::kBegin) {}
};
struct CommitStmt final : Statement {
  CommitStmt() : Statement(StatementKind::kCommit) {}
};
struct RollbackStmt final : Statement {
  RollbackStmt() : Statement(StatementKind::kRollback) {}
};

struct ExecProcedureStmt final : Statement {
  ExecProcedureStmt() : Statement(StatementKind::kExecProcedure) {}

  std::string procedure;
  std::vector<std::unique_ptr<Expr>> args;
};

}  // namespace sqlcm::sql

#endif  // SQLCM_SQL_AST_H_
