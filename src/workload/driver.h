// The paper's evaluation workloads (§6.2.2): a stream of short single-row
// clustered-index selects on lineitem/orders interleaved with multi-row
// 3-way-join selections, plus the stress workload of §6.2.1 (repeated
// single-row selects).
#ifndef SQLCM_WORKLOAD_DRIVER_H_
#define SQLCM_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "engine/session.h"
#include "workload/tpch_gen.h"

namespace sqlcm::workload {

/// One statement of a generated workload: parameterized SQL + bindings.
/// Parameterized statements share cached plans across the run, matching
/// the paper's setting where plans (and signatures) are compiled once.
struct WorkloadItem {
  std::string sql;
  exec::ParamMap params;
};

struct MixedWorkloadConfig {
  /// Paper: 20,000 short selects + 100 join selections of 1000-2000 rows.
  int64_t num_point_selects = 20'000;
  int64_t num_join_selects = 100;
  /// Join selections target this many lineitem rows.
  int64_t join_rows_min = 1'000;
  int64_t join_rows_max = 2'000;
  uint64_t seed = 7;
};

/// Generates the §6.2.2 mixed workload against data loaded by LoadTpch.
/// Deterministic in (tpch, config) — the paper executes "the exact same
/// queries in order" across approaches.
std::vector<WorkloadItem> GenerateMixedWorkload(
    const TpchConfig& tpch, const MixedWorkloadConfig& config);

/// Generates the §6.2.1 stress workload: `n` single-row clustered-index
/// selects on lineitem.
std::vector<WorkloadItem> GeneratePointSelectWorkload(const TpchConfig& tpch,
                                                      int64_t n,
                                                      uint64_t seed);

struct RunStats {
  int64_t wall_micros = 0;
  int64_t statements = 0;
  int64_t rows_returned = 0;
};

/// Executes the workload on one session, returning wall time. Fails fast
/// on the first error.
common::Result<RunStats> RunWorkload(engine::Session* session,
                                     const std::vector<WorkloadItem>& items);

}  // namespace sqlcm::workload

#endif  // SQLCM_WORKLOAD_DRIVER_H_
