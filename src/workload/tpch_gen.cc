#include "workload/tpch_gen.h"

#include "common/random.h"
#include "common/value.h"

namespace sqlcm::workload {

using common::Random;
using common::Row;
using common::Status;
using common::Value;

namespace {

int64_t LinesForOrder(Random* rng, const TpchConfig& config) {
  return rng->UniformInt(1, config.max_lines_per_order);
}

}  // namespace

int64_t ExpectedLineitemRows(const TpchConfig& config) {
  Random rng(config.seed);
  int64_t total = 0;
  for (int64_t o = 0; o < config.num_orders; ++o) {
    total += LinesForOrder(&rng, config);
  }
  return total;
}

Status LoadTpch(engine::Database* db, const TpchConfig& config) {
  storage::Catalog* catalog = db->catalog();

  SQLCM_ASSIGN_OR_RETURN(
      auto part_schema,
      catalog::TableSchema::Create(
          "part",
          {{"p_partkey", catalog::ColumnType::kInt},
           {"p_name", catalog::ColumnType::kString},
           {"p_size", catalog::ColumnType::kInt},
           {"p_retailprice", catalog::ColumnType::kDouble}},
          {"p_partkey"}));
  SQLCM_ASSIGN_OR_RETURN(storage::Table * part,
                         catalog->CreateTable(std::move(part_schema)));

  SQLCM_ASSIGN_OR_RETURN(
      auto orders_schema,
      catalog::TableSchema::Create(
          "orders",
          {{"o_orderkey", catalog::ColumnType::kInt},
           {"o_custkey", catalog::ColumnType::kInt},
           {"o_totalprice", catalog::ColumnType::kDouble},
           {"o_orderdate", catalog::ColumnType::kInt}},
          {"o_orderkey"}));
  SQLCM_ASSIGN_OR_RETURN(storage::Table * orders,
                         catalog->CreateTable(std::move(orders_schema)));

  SQLCM_ASSIGN_OR_RETURN(
      auto lineitem_schema,
      catalog::TableSchema::Create(
          "lineitem",
          {{"l_orderkey", catalog::ColumnType::kInt},
           {"l_linenumber", catalog::ColumnType::kInt},
           {"l_partkey", catalog::ColumnType::kInt},
           {"l_quantity", catalog::ColumnType::kDouble},
           {"l_extendedprice", catalog::ColumnType::kDouble},
           {"l_shipdate", catalog::ColumnType::kInt}},
          {"l_orderkey", "l_linenumber"}));
  SQLCM_ASSIGN_OR_RETURN(storage::Table * lineitem,
                         catalog->CreateTable(std::move(lineitem_schema)));

  Random rng(config.seed);

  for (int64_t p = 1; p <= config.num_parts; ++p) {
    Row row;
    row.push_back(Value::Int(p));
    row.push_back(Value::String("part_" + std::to_string(p) + "_" +
                                rng.NextString(8)));
    row.push_back(Value::Int(rng.UniformInt(1, 50)));
    row.push_back(Value::Double(1.0 + rng.NextDouble() * 999.0));
    SQLCM_RETURN_IF_ERROR(part->Insert(std::move(row)).status());
  }

  // Use a second deterministic stream for line counts so that
  // ExpectedLineitemRows matches regardless of column randomness.
  Random line_rng(config.seed);

  for (int64_t o = 1; o <= config.num_orders; ++o) {
    const int64_t lines = LinesForOrder(&line_rng, config);
    Row order_row;
    order_row.push_back(Value::Int(o));
    order_row.push_back(Value::Int(rng.UniformInt(1, config.num_orders / 10 + 1)));
    order_row.push_back(Value::Double(100.0 + rng.NextDouble() * 10000.0));
    order_row.push_back(Value::Int(rng.UniformInt(19920101, 19981231)));
    SQLCM_RETURN_IF_ERROR(orders->Insert(std::move(order_row)).status());

    for (int64_t l = 1; l <= lines; ++l) {
      Row line_row;
      line_row.push_back(Value::Int(o));
      line_row.push_back(Value::Int(l));
      line_row.push_back(Value::Int(rng.UniformInt(1, config.num_parts)));
      line_row.push_back(Value::Double(1.0 + rng.NextDouble() * 49.0));
      line_row.push_back(Value::Double(10.0 + rng.NextDouble() * 990.0));
      line_row.push_back(Value::Int(rng.UniformInt(19920101, 19981231)));
      SQLCM_RETURN_IF_ERROR(lineitem->Insert(std::move(line_row)).status());
    }
  }

  SQLCM_RETURN_IF_ERROR(
      lineitem->CreateIndex("lineitem_partkey", {"l_partkey"}));
  return Status::OK();
}

}  // namespace sqlcm::workload
