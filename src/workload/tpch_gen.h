// TPC-H-shaped synthetic data generator (paper §6.2 substrate).
//
// The paper's evaluation uses the TPC-H schema with 6M lineitem rows. The
// shape (clustered-index point selects on lineitem/orders; 3-way join
// lineitem ⋈ orders ⋈ part) is preserved here at configurable scale;
// benches report the scale they ran at (see DESIGN.md substitutions).
#ifndef SQLCM_WORKLOAD_TPCH_GEN_H_
#define SQLCM_WORKLOAD_TPCH_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "engine/database.h"

namespace sqlcm::workload {

struct TpchConfig {
  int64_t num_orders = 25'000;
  /// lineitems per order are uniform in [1, max_lines_per_order].
  int64_t max_lines_per_order = 7;  // TPC-H averages ~4
  int64_t num_parts = 2'000;
  uint64_t seed = 42;
};

/// Creates and populates:
///   part(p_partkey PK, p_name, p_size, p_retailprice)
///   orders(o_orderkey PK, o_custkey, o_totalprice, o_orderdate)
///   lineitem(l_orderkey, l_linenumber, l_partkey, l_quantity,
///            l_extendedprice, l_shipdate, PK(l_orderkey, l_linenumber))
///     + secondary index lineitem_partkey(l_partkey)
/// Loading goes through the storage layer directly (bulk load), not the
/// SQL path, so large scales stay fast.
common::Status LoadTpch(engine::Database* db, const TpchConfig& config);

/// Number of lineitem rows produced for `config` (deterministic in seed).
int64_t ExpectedLineitemRows(const TpchConfig& config);

}  // namespace sqlcm::workload

#endif  // SQLCM_WORKLOAD_TPCH_GEN_H_
