#include "workload/driver.h"

#include "common/random.h"

namespace sqlcm::workload {

using common::Random;
using common::Result;
using common::Value;

namespace {

constexpr char kLineitemPointSql[] =
    "SELECT * FROM lineitem WHERE l_orderkey = @k AND l_linenumber = @l";
constexpr char kOrdersPointSql[] =
    "SELECT * FROM orders WHERE o_orderkey = @k";
constexpr char kJoinSql[] =
    "SELECT l.l_orderkey, l.l_extendedprice, o.o_totalprice, p.p_name "
    "FROM lineitem l "
    "JOIN orders o ON l.l_orderkey = o.o_orderkey "
    "JOIN part p ON l.l_partkey = p.p_partkey "
    "WHERE l.l_orderkey >= @lo AND l.l_orderkey <= @hi";

/// Lineitem line counts per order, mirrored from the generator's stream.
std::vector<int64_t> LineCounts(const TpchConfig& tpch) {
  Random line_rng(tpch.seed);
  std::vector<int64_t> counts(static_cast<size_t>(tpch.num_orders));
  for (auto& c : counts) c = line_rng.UniformInt(1, tpch.max_lines_per_order);
  return counts;
}

}  // namespace

std::vector<WorkloadItem> GenerateMixedWorkload(
    const TpchConfig& tpch, const MixedWorkloadConfig& config) {
  Random rng(config.seed);
  const std::vector<int64_t> lines = LineCounts(tpch);
  const double avg_lines = (1.0 + static_cast<double>(tpch.max_lines_per_order)) / 2.0;

  std::vector<WorkloadItem> items;
  items.reserve(static_cast<size_t>(config.num_point_selects +
                                    config.num_join_selects));
  const int64_t interval =
      config.num_join_selects > 0
          ? std::max<int64_t>(1, config.num_point_selects /
                                     config.num_join_selects)
          : config.num_point_selects + 1;
  int64_t joins_emitted = 0;

  for (int64_t i = 0; i < config.num_point_selects; ++i) {
    WorkloadItem item;
    if (i % 2 == 0) {
      const int64_t order = rng.UniformInt(1, tpch.num_orders);
      const int64_t line =
          rng.UniformInt(1, lines[static_cast<size_t>(order - 1)]);
      item.sql = kLineitemPointSql;
      item.params = {{"k", Value::Int(order)}, {"l", Value::Int(line)}};
    } else {
      item.sql = kOrdersPointSql;
      item.params = {{"k", Value::Int(rng.UniformInt(1, tpch.num_orders))}};
    }
    items.push_back(std::move(item));

    if ((i + 1) % interval == 0 && joins_emitted < config.num_join_selects) {
      const int64_t target_rows =
          rng.UniformInt(config.join_rows_min, config.join_rows_max);
      const int64_t span = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(target_rows) / avg_lines));
      const int64_t lo =
          rng.UniformInt(1, std::max<int64_t>(1, tpch.num_orders - span));
      WorkloadItem join;
      join.sql = kJoinSql;
      join.params = {{"lo", Value::Int(lo)}, {"hi", Value::Int(lo + span - 1)}};
      items.push_back(std::move(join));
      ++joins_emitted;
    }
  }
  return items;
}

std::vector<WorkloadItem> GeneratePointSelectWorkload(const TpchConfig& tpch,
                                                      int64_t n,
                                                      uint64_t seed) {
  Random rng(seed);
  const std::vector<int64_t> lines = LineCounts(tpch);
  std::vector<WorkloadItem> items;
  items.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t order = rng.UniformInt(1, tpch.num_orders);
    const int64_t line =
        rng.UniformInt(1, lines[static_cast<size_t>(order - 1)]);
    WorkloadItem item;
    item.sql = kLineitemPointSql;
    item.params = {{"k", Value::Int(order)}, {"l", Value::Int(line)}};
    items.push_back(std::move(item));
  }
  return items;
}

Result<RunStats> RunWorkload(engine::Session* session,
                             const std::vector<WorkloadItem>& items) {
  RunStats stats;
  common::Clock* clock = common::SystemClock::Get();
  const int64_t start = clock->NowMicros();
  for (const WorkloadItem& item : items) {
    auto result = session->Execute(item.sql, &item.params);
    if (!result.ok()) return result.status();
    stats.rows_returned += static_cast<int64_t>(result->rows.size());
    ++stats.statements;
  }
  stats.wall_micros = clock->NowMicros() - start;
  return stats;
}

}  // namespace sqlcm::workload
