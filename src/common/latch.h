// Short-duration latches (the paper's term, §6.1) protecting LAT rows,
// directory shards and the per-shard ordering heaps.
//
// These guard critical sections of a few dozen instructions, so a spinlock
// is appropriate. The spin is bounded: after ~1k failed probes the waiter
// yields its timeslice, so an oversubscribed machine (more runnable threads
// than cores — the norm for in-server monitoring, where hooks run on every
// session thread) does not burn whole quanta spinning on a preempted
// holder. Contention measurements for the paper's "latching is not a
// hotspot" claim live in bench/bench_lat.cc.
#ifndef SQLCM_COMMON_LATCH_H_
#define SQLCM_COMMON_LATCH_H_

#include <atomic>
#include <thread>

namespace sqlcm::common {

/// Test-and-test-and-set spinlock. Satisfies BasicLockable so it works with
/// std::lock_guard.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      int spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinLimit) {
          // spin; pause hint keeps sibling hyperthread responsive
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else {
          // Holder is likely preempted; give up the timeslice instead of
          // spinning through it.
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 1024;

  std::atomic<bool> flag_{false};
};

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_LATCH_H_
