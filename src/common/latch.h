// Short-duration latches (the paper's term, §6.1) protecting LAT rows,
// the ordering heap and hash-directory entries.
//
// These guard critical sections of a few dozen instructions, so a spinlock
// is appropriate; contention measurements for the paper's "latching is not
// a hotspot" claim live in bench/bench_lat.cc.
#ifndef SQLCM_COMMON_LATCH_H_
#define SQLCM_COMMON_LATCH_H_

#include <atomic>

namespace sqlcm::common {

/// Test-and-test-and-set spinlock. Satisfies BasicLockable so it works with
/// std::lock_guard.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; pause hint keeps sibling hyperthread responsive
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_LATCH_H_
