// Small, fast, seedable PRNG for workload generation and tests.
//
// xoshiro256** — deterministic across platforms (unlike std::mt19937's
// distributions, whose output is implementation-defined for some
// distribution types).
#ifndef SQLCM_COMMON_RANDOM_H_
#define SQLCM_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace sqlcm::common {

class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bull) {
    // splitmix64 expansion of the seed into four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t len) {
    std::string out(len, 'a');
    for (char& c : out) c = static_cast<char>('a' + Uniform(26));
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_RANDOM_H_
