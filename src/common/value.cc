#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace sqlcm::common {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return "BOOL";
    case ValueKind::kInt:
      return "INT";
    case ValueKind::kDouble:
      return "DOUBLE";
    case ValueKind::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const bool a_num = is_numeric();
  const bool b_num = other.is_numeric();
  if (a_num && b_num) {
    // Compare int/int exactly to avoid double rounding on big ints.
    if (is_int() && other.is_int()) {
      const int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      const int a = bool_value() ? 1 : 0, b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case ValueKind::kString:
      return string_value().compare(other.string_value());
    default:
      return 0;  // unreachable: numeric handled above
  }
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueKind::kBool:
      return bool_value() ? 0x5bd1e995u : 0xc2b2ae35u;
    case ValueKind::kInt:
      // Hash ints through double so 1 and 1.0 land in the same bucket,
      // consistent with Compare()'s numeric equality.
      return std::hash<double>()(static_cast<double>(int_value()));
    case ValueKind::kDouble:
      return std::hash<double>()(double_value());
    case ValueKind::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case ValueKind::kInt:
      return std::to_string(int_value());
    case ValueKind::kDouble:
      return FormatDoubleShortest(double_value());
    case ValueKind::kString: {
      std::string out = "'";
      for (char c : string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  if (is_string()) return string_value();
  return ToString();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

std::string FormatDoubleShortest(double d) {
  if (std::isnan(d)) return "nan";
  if (std::isinf(d)) return d < 0 ? "-inf" : "inf";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    const double parsed = std::strtod(buf, nullptr);
    // Bitwise comparison: distinguishes -0.0 from 0.0 and is exact for
    // denormals, unlike ==.
    if (std::memcmp(&parsed, &d, sizeof(double)) == 0) break;
  }
  return buf;
}

size_t HashRow(const Row& row) {
  size_t h = 0x811c9dc5u;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

namespace {

bool BothNumericOrNull(const Value& a, const Value& b, Result<Value>* out) {
  if (a.is_null() || b.is_null()) {
    *out = Value::Null();
    return false;
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    *out = Status::TypeError("arithmetic on non-numeric values: " +
                             a.ToString() + ", " + b.ToString());
    return false;
  }
  return true;
}

}  // namespace

Result<Value> ValueAdd(const Value& a, const Value& b) {
  Result<Value> early = Value::Null();
  if (!BothNumericOrNull(a, b, &early)) return early;
  if (a.is_int() && b.is_int()) return Value::Int(a.int_value() + b.int_value());
  return Value::Double(a.AsDouble() + b.AsDouble());
}

Result<Value> ValueSub(const Value& a, const Value& b) {
  Result<Value> early = Value::Null();
  if (!BothNumericOrNull(a, b, &early)) return early;
  if (a.is_int() && b.is_int()) return Value::Int(a.int_value() - b.int_value());
  return Value::Double(a.AsDouble() - b.AsDouble());
}

Result<Value> ValueMul(const Value& a, const Value& b) {
  Result<Value> early = Value::Null();
  if (!BothNumericOrNull(a, b, &early)) return early;
  if (a.is_int() && b.is_int()) return Value::Int(a.int_value() * b.int_value());
  return Value::Double(a.AsDouble() * b.AsDouble());
}

Result<Value> ValueDiv(const Value& a, const Value& b) {
  Result<Value> early = Value::Null();
  if (!BothNumericOrNull(a, b, &early)) return early;
  const double d = b.AsDouble();
  if (d == 0.0) return Status::InvalidArgument("division by zero");
  return Value::Double(a.AsDouble() / d);
}

Result<Value> ValueNeg(const Value& a) {
  if (a.is_null()) return Value::Null();
  if (a.is_int()) return Value::Int(-a.int_value());
  if (a.is_double()) return Value::Double(-a.double_value());
  return Status::TypeError("negation of non-numeric value: " + a.ToString());
}

}  // namespace sqlcm::common
