#include "common/clock.h"

#include <chrono>
#include <thread>

namespace sqlcm::common {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

SystemClock* SystemClock::Get() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

}  // namespace sqlcm::common
