// Fault-injection framework (robustness layer).
//
// A *fault point* is a named site in production code that asks the
// process-wide registry "should I fail here, and how?". Points are compiled
// in permanently — the disabled fast path is a single relaxed atomic load —
// and armed either programmatically (tests) or from the environment (CI
// chaos runs):
//
//   SQLCM_FAULT_INJECT="storage.snapshot.write=io_error:1;monitor.hook.slow=slow:0.01"
//   SQLCM_FAULT_SEED=12345        # seeds probabilistic firing, logged by CI
//
// Spec grammar per point:  <point>=<kind>[:<probability>[:<max_fires>]]
//   kind         io_error | short_write | crash_rename | latch_stall | slow
//   probability  chance each hit fires (default 1.0)
//   max_fires    total fires before the point self-disarms (default unlimited)
//
// Sites that can fail in only one way call `Fire(point)`; sites with
// several failure modes call `FireKind(point)` and branch on the returned
// kind. Every hit and fire is counted so tests can assert that each
// injection point was actually exercised (ISSUE 2 acceptance criteria) and
// the sqlcm_fault_points system view can show live state.
#ifndef SQLCM_COMMON_FAULT_H_
#define SQLCM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace sqlcm::common {

enum class FaultKind : uint8_t {
  kNone = 0,      // point armed for counting only (probability 0 works too)
  kIOError,       // fail the operation with Status::IOError
  kShortWrite,    // write a torn prefix, then fail
  kCrashRename,   // durable temp file written, "crash" before the rename
  kLatchStall,    // simulate latch contention / a latch acquisition timeout
  kSlow,          // inject latency (monitor hooks; drives the load governor)
};

const char* FaultKindName(FaultKind kind);
Result<FaultKind> ParseFaultKind(std::string_view name);

class FaultRegistry {
 public:
  struct Spec {
    FaultKind kind = FaultKind::kIOError;
    double probability = 1.0;
    /// Total times the point may fire before self-disarming; -1 = unlimited.
    int64_t max_fires = -1;
  };

  struct PointState {
    std::string point;
    Spec spec;
    uint64_t hits = 0;   // times the site asked
    uint64_t fires = 0;  // times a fault was injected
  };

  /// Process-wide instance. First call applies SQLCM_FAULT_INJECT /
  /// SQLCM_FAULT_SEED from the environment.
  static FaultRegistry* Get();

  void Arm(std::string_view point, Spec spec);
  void Disarm(std::string_view point);
  /// Disarms every point and clears all counters (test isolation).
  void Reset();
  void Seed(uint64_t seed);

  /// Applies an SQLCM_FAULT_INJECT-style spec string. Unknown kinds or
  /// malformed entries return InvalidArgument without arming anything.
  Status ArmFromSpec(std::string_view spec_string);

  /// True when the point is armed and its dice roll fires. Cheap when the
  /// registry is idle: one relaxed load, no lock.
  bool Fire(std::string_view point) {
    if (!armed_points_.load(std::memory_order_relaxed)) return false;
    return FireSlow(point) != FaultKind::kNone;
  }

  /// Like Fire() but reports which failure mode was armed (kNone = pass).
  FaultKind FireKind(std::string_view point) {
    if (!armed_points_.load(std::memory_order_relaxed)) return FaultKind::kNone;
    return FireSlow(point);
  }

  uint64_t fires(std::string_view point) const;
  uint64_t hits(std::string_view point) const;
  std::vector<PointState> Snapshot() const;

 private:
  FaultRegistry();

  FaultKind FireSlow(std::string_view point);

  struct Entry {
    Spec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
    bool armed = false;  // retained after disarm so counters stay visible
  };

  std::atomic<int> armed_points_{0};
  mutable std::mutex mutex_;
  Random rng_;
  std::unordered_map<std::string, Entry> points_;
};

/// Convenience for the common one-failure-mode site.
inline bool FaultFires(std::string_view point) {
  return FaultRegistry::Get()->Fire(point);
}

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_FAULT_H_
