#include "common/status.h"

namespace sqlcm::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sqlcm::common
