#include "common/string_util.h"

#include <cctype>

namespace sqlcm::common {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

bool CsvRecordComplete(std::string_view partial) {
  bool in_quotes = false;
  for (char c : partial) {
    if (c == '"') in_quotes = !in_quotes;
  }
  // Escaped quotes ("") toggle twice, so parity alone is exact.
  return !in_quotes;
}

std::vector<std::string> CsvParseLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace sqlcm::common
