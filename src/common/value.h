// Dynamically-typed SQL value used throughout the engine and the monitor.
//
// Probe values in SQLCM are "cast to SQL Server types, enabling the use of
// all aggregation functions provided by the database server" (paper §4.1);
// mirroring that, the engine and the monitoring framework share this one
// value type.
#ifndef SQLCM_COMMON_VALUE_H_
#define SQLCM_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace sqlcm::common {

/// Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt,     // 64-bit signed
  kDouble,  // IEEE double (SQL FLOAT)
  kString,  // also used for BLOB-ish payloads such as signatures
};

const char* ValueKindName(ValueKind kind);

/// A single SQL value. Copyable; strings are the only allocating kind.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value Double(double v) {
    return Value(Rep(std::in_place_index<3>, v));
  }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<4>, std::move(v)));
  }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Preconditions: matching kind(). Checked in debug builds via variant.
  bool bool_value() const { return std::get<1>(rep_); }
  int64_t int_value() const { return std::get<2>(rep_); }
  double double_value() const { return std::get<3>(rep_); }
  const std::string& string_value() const { return std::get<4>(rep_); }

  /// Numeric widening: int or double value as double. Precondition: numeric.
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Three-way ordering used by indexes, sorts and LAT ordering columns.
  /// NULL sorts before everything; numeric kinds compare by numeric value;
  /// otherwise kinds must match (mismatched kinds order by kind tag, which
  /// keeps the comparator a strict weak order even on heterogenous data).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL equality for grouping: NULLs group together, 1 == 1.0.
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric kinds hash by double value).
  size_t Hash() const;

  /// Approximate in-memory footprint (used by LAT byte-size accounting).
  size_t ApproxBytes() const {
    return sizeof(Value) + (is_string() ? string_value().capacity() : 0);
  }

  /// Render for CSV persist / debug: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Unquoted rendering used when substituting attribute values into
  /// SendMail / RunExternal template strings.
  std::string ToDisplayString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Shortest decimal rendering of `d` that parses back (strtod) to exactly
/// the same bits: tries 15/16/17 significant digits and returns the first
/// that round-trips. Used by Value::ToString and the CSV/snapshot codec so
/// doubles survive arbitrarily many persist/restore cycles bit-exactly.
/// Non-finite values render as "inf" / "-inf" / "nan" (strtod-parsable).
std::string FormatDoubleShortest(double d);

/// A row of values; the universal tuple currency of the engine.
using Row = std::vector<Value>;

/// Hash of a sequence of values (group keys, composite index keys).
size_t HashRow(const Row& row);

struct RowHasher {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

// Arithmetic with SQL NULL propagation; TypeError on non-numeric operands.
Result<Value> ValueAdd(const Value& a, const Value& b);
Result<Value> ValueSub(const Value& a, const Value& b);
Result<Value> ValueMul(const Value& a, const Value& b);
/// Division always yields double; division by zero is an InvalidArgument.
Result<Value> ValueDiv(const Value& a, const Value& b);
Result<Value> ValueNeg(const Value& a);

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_VALUE_H_
