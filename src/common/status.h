// Exception-free error handling, in the style of Arrow/RocksDB.
//
// All fallible operations in the library return a Status (when there is no
// value to produce) or a Result<T> (when there is). Exceptions are not used
// anywhere in the library.
#ifndef SQLCM_COMMON_STATUS_H_
#define SQLCM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sqlcm::common {

/// Broad machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity does not exist
  kAlreadyExists,     // named entity already exists
  kParseError,        // SQL / rule-language text failed to parse
  kTypeError,         // type mismatch during binding or evaluation
  kDeadlock,          // transaction chosen as deadlock victim
  kCancelled,         // execution cancelled (e.g. by a SQLCM Cancel action)
  kAborted,           // transaction rolled back for another reason
  kResourceExhausted, // a configured limit was hit
  kIOError,           // filesystem problem during persist/restore
  kInternal,          // invariant violation; indicates a library bug
  kNotImplemented,
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// Statuses are copyable and movable; the OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a T or an error Status. Like arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Checked in debug builds.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

// Propagation macros (statement-expression free, Arrow-style).
#define SQLCM_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::sqlcm::common::Status _st = (expr);             \
    if (!_st.ok()) return _st;                        \
  } while (0)

#define SQLCM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define SQLCM_CONCAT_IMPL(a, b) a##b
#define SQLCM_CONCAT(a, b) SQLCM_CONCAT_IMPL(a, b)

/// SQLCM_ASSIGN_OR_RETURN(auto x, ExprReturningResult());
#define SQLCM_ASSIGN_OR_RETURN(lhs, rexpr) \
  SQLCM_ASSIGN_OR_RETURN_IMPL(             \
      SQLCM_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_STATUS_H_
