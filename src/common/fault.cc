#include "common/fault.h"

#include <cstdlib>

#include "common/string_util.h"

namespace sqlcm::common {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kIOError: return "io_error";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kCrashRename: return "crash_rename";
    case FaultKind::kLatchStall: return "latch_stall";
    case FaultKind::kSlow: return "slow";
  }
  return "?";
}

Result<FaultKind> ParseFaultKind(std::string_view name) {
  if (EqualsIgnoreCase(name, "none")) return FaultKind::kNone;
  if (EqualsIgnoreCase(name, "io_error")) return FaultKind::kIOError;
  if (EqualsIgnoreCase(name, "short_write")) return FaultKind::kShortWrite;
  if (EqualsIgnoreCase(name, "crash_rename")) return FaultKind::kCrashRename;
  if (EqualsIgnoreCase(name, "latch_stall")) return FaultKind::kLatchStall;
  if (EqualsIgnoreCase(name, "slow")) return FaultKind::kSlow;
  return Status::InvalidArgument("unknown fault kind '" + std::string(name) +
                                 "'");
}

FaultRegistry* FaultRegistry::Get() {
  static FaultRegistry* instance = new FaultRegistry();
  return instance;
}

FaultRegistry::FaultRegistry() {
  if (const char* seed = std::getenv("SQLCM_FAULT_SEED")) {
    Seed(std::strtoull(seed, nullptr, 10));
  }
  if (const char* spec = std::getenv("SQLCM_FAULT_INJECT")) {
    // Environment misconfiguration must not abort the process; a bad spec
    // simply arms nothing (the CI job greps its own spec echo instead).
    (void)ArmFromSpec(spec);
  }
}

void FaultRegistry::Arm(std::string_view point, Spec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = points_[std::string(point)];
  if (!entry.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  entry.armed = true;
  entry.spec = spec;
}

void FaultRegistry::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void FaultRegistry::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Random(seed);
}

Status FaultRegistry::ArmFromSpec(std::string_view spec_string) {
  for (const std::string& item : Split(spec_string, ';')) {
    const std::string_view trimmed = Trim(item);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec '" + std::string(trimmed) +
                                     "' is not <point>=<kind>[:p[:n]]");
    }
    const std::string point(Trim(trimmed.substr(0, eq)));
    const auto parts = Split(trimmed.substr(eq + 1), ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("fault spec '" + std::string(trimmed) +
                                     "' is missing a kind");
    }
    Spec spec;
    SQLCM_ASSIGN_OR_RETURN(spec.kind, ParseFaultKind(Trim(parts[0])));
    if (parts.size() > 1 && !parts[1].empty()) {
      spec.probability = std::strtod(parts[1].c_str(), nullptr);
    }
    if (parts.size() > 2 && !parts[2].empty()) {
      spec.max_fires = std::strtoll(parts[2].c_str(), nullptr, 10);
    }
    if (parts.size() > 3) {
      return Status::InvalidArgument("fault spec '" + std::string(trimmed) +
                                     "' has too many fields");
    }
    Arm(point, spec);
  }
  return Status::OK();
}

FaultKind FaultRegistry::FireSlow(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  if (it == points_.end()) return FaultKind::kNone;
  Entry& entry = it->second;
  ++entry.hits;
  if (!entry.armed || entry.spec.kind == FaultKind::kNone) {
    return FaultKind::kNone;
  }
  if (entry.spec.max_fires >= 0 &&
      entry.fires >= static_cast<uint64_t>(entry.spec.max_fires)) {
    return FaultKind::kNone;
  }
  if (entry.spec.probability < 1.0 &&
      rng_.NextDouble() >= entry.spec.probability) {
    return FaultKind::kNone;
  }
  ++entry.fires;
  return entry.spec.kind;
}

uint64_t FaultRegistry::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.fires;
}

uint64_t FaultRegistry::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<FaultRegistry::PointState> FaultRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PointState> out;
  out.reserve(points_.size());
  for (const auto& [point, entry] : points_) {
    FaultRegistry::Spec spec = entry.spec;
    if (!entry.armed) spec.kind = FaultKind::kNone;
    out.push_back({point, spec, entry.hits, entry.fires});
  }
  return out;
}

}  // namespace sqlcm::common
