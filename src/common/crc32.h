// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used by the snapshot file format (storage/table_io) to detect torn or
// corrupted persistence files before their contents are seeded back into
// LATs or tables. Not cryptographic; guards against accidental corruption
// only.
#ifndef SQLCM_COMMON_CRC32_H_
#define SQLCM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sqlcm::common {

/// CRC of `data`; `seed` chains incremental computations (pass the previous
/// return value to continue a running CRC).
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_CRC32_H_
