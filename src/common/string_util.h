// Small string helpers shared by the SQL front end, the rule language and
// CSV persistence.
#ifndef SQLCM_COMMON_STRING_UTIL_H_
#define SQLCM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sqlcm::common {

/// 64-bit FNV-1a hash. Used wherever a bounded structure (trace ring slots,
/// span payloads) must identify an unbounded string (qualifiers, LAT names)
/// without storing it. Inline so lock-free code paths can use it without a
/// library dependency; stable across runs by construction (no seed).
inline constexpr uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// ASCII-lowercased copy.
std::string ToLower(std::string_view s);
/// ASCII-uppercased copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality (SQL identifiers and keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);

/// CSV field encoding: quotes the field if it contains separator, quote or
/// newline; embedded quotes are doubled.
std::string CsvEscape(std::string_view field);

/// Parses one CSV record into fields (inverse of CsvEscape + Join(",")).
/// The record may span multiple physical lines when a quoted field contains
/// newlines; pass the joined text (see CsvRecordComplete).
std::vector<std::string> CsvParseLine(std::string_view line);

/// True when `partial` closes every quote it opens — i.e. a physical line
/// read so far is a complete CSV record. A quoted field containing a
/// newline leaves the record open; callers append the next physical line
/// (re-inserting the '\n') until this returns true.
bool CsvRecordComplete(std::string_view partial);

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_STRING_UTIL_H_
