// Time source abstraction.
//
// The engine and the monitor take a Clock* so tests can drive time
// deterministically (MockClock) while benches and examples use real time
// (SystemClock). All durations in the library are microseconds unless a
// name says otherwise.
#ifndef SQLCM_COMMON_CLOCK_H_
#define SQLCM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sqlcm::common {

/// Monotonic microsecond clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary epoch; monotonic non-decreasing.
  virtual int64_t NowMicros() const = 0;

  /// Blocks (or advances virtual time) for the given duration.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Real clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;

  /// Process-wide instance (trivially-destructible storage).
  static SystemClock* Get();
};

/// Manually-advanced clock for deterministic tests.
///
/// Thread-safe: concurrent readers see a consistent monotonic value.
class MockClock final : public Clock {
 public:
  explicit MockClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }
  /// SleepMicros on a mock clock advances time rather than blocking, so
  /// single-threaded tests that exercise sleep-based code terminate.
  void SleepMicros(int64_t micros) override { Advance(micros); }

  void Advance(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }
  void SetMicros(int64_t now) { now_.store(now, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

/// Scope timer: accumulates elapsed wall time into *sink_micros.
class ScopedTimer {
 public:
  ScopedTimer(const Clock* clock, int64_t* sink_micros)
      : clock_(clock), sink_micros_(sink_micros),
        start_(clock->NowMicros()) {}
  ~ScopedTimer() { *sink_micros_ += clock_->NowMicros() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Clock* clock_;
  int64_t* sink_micros_;
  int64_t start_;
};

}  // namespace sqlcm::common

#endif  // SQLCM_COMMON_CLOCK_H_
