#include "exec/planner.h"

#include <unordered_set>

#include "common/string_util.h"

namespace sqlcm::exec {

using common::Result;
using common::Status;
using common::Value;

void SplitConjuncts(const sql::Expr& expr,
                    std::vector<const sql::Expr*>* conjuncts) {
  if (expr.kind == sql::ExprKind::kBinary &&
      expr.binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(*expr.left, conjuncts);
    SplitConjuncts(*expr.right, conjuncts);
    return;
  }
  conjuncts->push_back(&expr);
}

bool ContainsAggregate(const sql::Expr& expr) {
  if (expr.kind == sql::ExprKind::kFuncCall &&
      ParseAggFunc(expr.func_name).ok()) {
    return true;
  }
  if (expr.left != nullptr && ContainsAggregate(*expr.left)) return true;
  if (expr.right != nullptr && ContainsAggregate(*expr.right)) return true;
  for (const auto& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

Result<std::unique_ptr<LogicalPlan>> Planner::Plan(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return PlanSelect(static_cast<const sql::SelectStmt&>(stmt));
    case sql::StatementKind::kInsert:
      return PlanInsert(static_cast<const sql::InsertStmt&>(stmt));
    case sql::StatementKind::kUpdate:
      return PlanUpdate(static_cast<const sql::UpdateStmt&>(stmt));
    case sql::StatementKind::kDelete:
      return PlanDelete(static_cast<const sql::DeleteStmt&>(stmt));
    default:
      return Status::InvalidArgument(
          "statement kind is not planned through the optimizer");
  }
}

Result<std::unique_ptr<LogicalPlan>> Planner::MakeGet(
    const sql::TableRef& ref) {
  storage::Table* table = catalog_->GetTable(ref.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + ref.table + "' not found");
  }
  auto node = std::make_unique<LogicalPlan>();
  node->op = LogicalOp::kGet;
  node->table = table;
  node->alias = ref.alias;
  for (const auto& col : table->schema().columns()) {
    node->output.Append({ref.alias, col.name, col.type});
  }
  return node;
}

Result<std::unique_ptr<LogicalPlan>> Planner::PlanSelect(
    const sql::SelectStmt& stmt) {
  // FROM and JOINs: left-deep join tree.
  SQLCM_ASSIGN_OR_RETURN(auto plan, MakeGet(stmt.from));
  for (const auto& join : stmt.joins) {
    SQLCM_ASSIGN_OR_RETURN(auto right, MakeGet(join.table));
    auto node = std::make_unique<LogicalPlan>();
    node->op = LogicalOp::kJoin;
    node->output = plan->output;
    node->output.AppendAll(right->output);
    std::vector<const sql::Expr*> conjuncts;
    SplitConjuncts(*join.on, &conjuncts);
    for (const sql::Expr* c : conjuncts) {
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*c, node->output));
      node->predicates.push_back(std::move(bound));
    }
    node->children.push_back(std::move(plan));
    node->children.push_back(std::move(right));
    plan = std::move(node);
  }

  // WHERE.
  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    auto node = std::make_unique<LogicalPlan>();
    node->op = LogicalOp::kFilter;
    node->output = plan->output;
    std::vector<const sql::Expr*> conjuncts;
    SplitConjuncts(*stmt.where, &conjuncts);
    for (const sql::Expr* c : conjuncts) {
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*c, plan->output));
      node->predicates.push_back(std::move(bound));
    }
    node->children.push_back(std::move(plan));
    plan = std::move(node);
  }

  // Aggregation.
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (!item.star && ContainsAggregate(*item.expr)) has_agg = true;
  }

  if (has_agg) {
    auto agg = std::make_unique<LogicalPlan>();
    agg->op = LogicalOp::kAggregate;
    const RowSchema& input = plan->output;

    // Group expressions with canonical renderings for matching.
    std::vector<std::string> group_sigs;
    for (const auto& gexpr : stmt.group_by) {
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*gexpr, input));
      std::string sig;
      bound->AppendSignature(/*wildcard_constants=*/false, &sig);
      group_sigs.push_back(std::move(sig));
      // Output column name: bare column refs keep their name.
      std::string name = gexpr->kind == sql::ExprKind::kColumnRef
                             ? gexpr->column
                             : "group" + std::to_string(group_sigs.size() - 1);
      catalog::ColumnType type = catalog::ColumnType::kString;
      if (bound->kind() == BoundExpr::Kind::kSlot) {
        type = input.column(bound->slot()).type;
      } else if (bound->kind() == BoundExpr::Kind::kLiteral) {
        type = bound->literal().is_string() ? catalog::ColumnType::kString
                                            : catalog::ColumnType::kDouble;
      } else {
        type = catalog::ColumnType::kDouble;
      }
      agg->output.Append({"", std::move(name), type});
      agg->group_exprs.push_back(std::move(bound));
    }

    // SELECT items: each must be a group expression or an aggregate call.
    auto project = std::make_unique<LogicalPlan>();
    project->op = LogicalOp::kProject;
    for (size_t item_idx = 0; item_idx < stmt.items.size(); ++item_idx) {
      const auto& item = stmt.items[item_idx];
      if (item.star) {
        return Status::InvalidArgument("SELECT * with GROUP BY/aggregates");
      }
      const sql::Expr& e = *item.expr;
      if (e.kind == sql::ExprKind::kFuncCall && ParseAggFunc(e.func_name).ok()) {
        AggSpec spec;
        SQLCM_ASSIGN_OR_RETURN(spec.func, ParseAggFunc(e.func_name));
        spec.star = e.star_arg;
        if (!spec.star) {
          if (e.args.size() != 1) {
            return Status::InvalidArgument(e.func_name +
                                           " takes exactly one argument");
          }
          SQLCM_ASSIGN_OR_RETURN(spec.arg, BoundExpr::Bind(*e.args[0], input));
        } else if (spec.func != AggFunc::kCount) {
          return Status::InvalidArgument("'*' argument only valid for COUNT");
        }
        spec.output_name =
            !item.alias.empty()
                ? item.alias
                : e.func_name + "_" + std::to_string(item_idx);
        const catalog::ColumnType out_type =
            spec.func == AggFunc::kCount ? catalog::ColumnType::kInt
                                         : catalog::ColumnType::kDouble;
        agg->output.Append({"", spec.output_name, out_type});
        agg->aggregates.push_back(std::move(spec));
        // Project slot: group columns first, then aggregates in order.
        // Slot index = #groups + (this aggregate's index).
        continue;  // projection built after agg->output is complete
      }
      // Must match some group expression.
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(e, input));
      std::string sig;
      bound->AppendSignature(false, &sig);
      bool matched = false;
      for (size_t g = 0; g < group_sigs.size(); ++g) {
        if (group_sigs[g] == sig) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(
            "SELECT item '" + e.ToString() +
            "' is neither an aggregate nor in GROUP BY");
      }
    }

    // Build the projection over the aggregate's output schema by resolving
    // each item against it.
    size_t agg_seen = 0;
    for (size_t item_idx = 0; item_idx < stmt.items.size(); ++item_idx) {
      const auto& item = stmt.items[item_idx];
      const sql::Expr& e = *item.expr;
      size_t slot;
      std::string out_name;
      if (e.kind == sql::ExprKind::kFuncCall && ParseAggFunc(e.func_name).ok()) {
        slot = agg->group_exprs.size() + agg_seen;
        out_name = agg->aggregates[agg_seen].output_name;
        ++agg_seen;
      } else {
        // Find the matching group column by signature.
        SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(e, plan->output));
        std::string sig;
        bound->AppendSignature(false, &sig);
        slot = 0;
        for (size_t g = 0; g < group_sigs.size(); ++g) {
          if (group_sigs[g] == sig) {
            slot = g;
            break;
          }
        }
        out_name = !item.alias.empty() ? item.alias
                                       : agg->output.column(slot).name;
      }
      auto slot_ref = sql::Expr::ColumnRef(
          "", agg->output.column(slot).name);
      SQLCM_ASSIGN_OR_RETURN(auto bound_out,
                             BoundExpr::Bind(*slot_ref, agg->output));
      project->project_names.push_back(out_name);
      project->output.Append({"", out_name, agg->output.column(slot).type});
      project->project_exprs.push_back(std::move(bound_out));
    }

    agg->children.push_back(std::move(plan));
    project->children.push_back(std::move(agg));
    plan = std::move(project);
  } else {
    // Plain projection; '*' expands to every input column.
    auto project = std::make_unique<LogicalPlan>();
    project->op = LogicalOp::kProject;
    const RowSchema& input = plan->output;
    for (const auto& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < input.size(); ++i) {
          auto ref = sql::Expr::ColumnRef(input.column(i).qualifier,
                                          input.column(i).name);
          SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*ref, input));
          project->project_exprs.push_back(std::move(bound));
          project->project_names.push_back(input.column(i).name);
          project->output.Append(input.column(i));
        }
        continue;
      }
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*item.expr, input));
      std::string name = !item.alias.empty() ? item.alias
                         : item.expr->kind == sql::ExprKind::kColumnRef
                             ? item.expr->column
                             : "col" + std::to_string(
                                   project->project_exprs.size());
      catalog::ColumnType type = catalog::ColumnType::kDouble;
      if (bound->kind() == BoundExpr::Kind::kSlot) {
        type = input.column(bound->slot()).type;
      } else if (bound->kind() == BoundExpr::Kind::kLiteral) {
        if (bound->literal().is_string()) type = catalog::ColumnType::kString;
        else if (bound->literal().is_int()) type = catalog::ColumnType::kInt;
        else if (bound->literal().is_bool()) type = catalog::ColumnType::kBool;
      }
      project->output.Append({"", name, type});
      project->project_names.push_back(std::move(name));
      project->project_exprs.push_back(std::move(bound));
    }
    project->children.push_back(std::move(plan));
    plan = std::move(project);
  }

  if (stmt.distinct) {
    auto distinct = std::make_unique<LogicalPlan>();
    distinct->op = LogicalOp::kDistinct;
    distinct->output = plan->output;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  // ORDER BY: bound against the projection output (aliases visible).
  if (!stmt.order_by.empty()) {
    auto sort = std::make_unique<LogicalPlan>();
    sort->op = LogicalOp::kSort;
    sort->output = plan->output;
    for (const auto& key : stmt.order_by) {
      SortKey sk;
      auto bound = BoundExpr::Bind(*key.expr, plan->output);
      if (!bound.ok() && key.expr->kind == sql::ExprKind::kColumnRef &&
          !key.expr->table.empty()) {
        // Projection output columns lose their table qualifier; retry a
        // qualified ref (ORDER BY t.id) by bare name.
        auto bare = sql::Expr::ColumnRef("", key.expr->column);
        bound = BoundExpr::Bind(*bare, plan->output);
      }
      if (!bound.ok()) return bound.status();
      sk.expr = std::move(*bound);
      sk.descending = key.descending;
      sort->sort_keys.push_back(std::move(sk));
    }
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }

  if (stmt.limit >= 0) {
    auto limit = std::make_unique<LogicalPlan>();
    limit->op = LogicalOp::kLimit;
    limit->output = plan->output;
    limit->limit = stmt.limit;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  return plan;
}

Result<std::unique_ptr<LogicalPlan>> Planner::PlanInsert(
    const sql::InsertStmt& stmt) {
  storage::Table* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  if (table->is_virtual()) {
    return Status::InvalidArgument("table '" + stmt.table +
                                   "' is a read-only system view");
  }
  const auto& schema = table->schema();
  // Map the optional column list to schema ordinals.
  std::vector<int> target_ordinal;  // position i of VALUES row -> ordinal
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      target_ordinal.push_back(static_cast<int>(i));
    }
  } else {
    std::unordered_set<int> seen;
    for (const auto& name : stmt.columns) {
      const int ordinal = schema.FindColumn(name);
      if (ordinal < 0) {
        return Status::NotFound("column '" + name + "' not found in table '" +
                                stmt.table + "'");
      }
      if (!seen.insert(ordinal).second) {
        return Status::InvalidArgument("column '" + name +
                                       "' listed more than once");
      }
      target_ordinal.push_back(ordinal);
    }
  }

  auto node = std::make_unique<LogicalPlan>();
  node->op = LogicalOp::kInsert;
  node->table = table;
  node->alias = table->name();

  const RowSchema empty_schema;
  for (const auto& row : stmt.rows) {
    if (row.size() != target_ordinal.size()) {
      return Status::InvalidArgument(
          "VALUES row has " + std::to_string(row.size()) +
          " expressions, expected " + std::to_string(target_ordinal.size()));
    }
    std::vector<std::unique_ptr<BoundExpr>> full_row(schema.num_columns());
    for (size_t i = 0; i < row.size(); ++i) {
      SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*row[i], empty_schema));
      if (!bound->IsConstant()) {
        return Status::InvalidArgument(
            "VALUES expressions must be constant");
      }
      full_row[static_cast<size_t>(target_ordinal[i])] = std::move(bound);
    }
    // Unspecified columns become NULL.
    for (auto& cell : full_row) {
      if (cell == nullptr) {
        auto null_lit = sql::Expr::Literal(Value::Null());
        SQLCM_ASSIGN_OR_RETURN(cell, BoundExpr::Bind(*null_lit, empty_schema));
      }
    }
    node->insert_rows.push_back(std::move(full_row));
  }
  return node;
}

namespace {

/// Binds the WHERE conjuncts of an UPDATE/DELETE against the target table.
common::Status BindDmlPredicates(const sql::Expr* where,
                                 const RowSchema& schema, LogicalPlan* node) {
  if (where == nullptr) return Status::OK();
  std::vector<const sql::Expr*> conjuncts;
  SplitConjuncts(*where, &conjuncts);
  for (const sql::Expr* c : conjuncts) {
    SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*c, schema));
    node->predicates.push_back(std::move(bound));
  }
  return Status::OK();
}

RowSchema TableRowSchema(const storage::Table& table) {
  RowSchema schema;
  for (const auto& col : table.schema().columns()) {
    schema.Append({table.name(), col.name, col.type});
  }
  return schema;
}

}  // namespace

Result<std::unique_ptr<LogicalPlan>> Planner::PlanUpdate(
    const sql::UpdateStmt& stmt) {
  storage::Table* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  if (table->is_virtual()) {
    return Status::InvalidArgument("table '" + stmt.table +
                                   "' is a read-only system view");
  }
  auto node = std::make_unique<LogicalPlan>();
  node->op = LogicalOp::kUpdate;
  node->table = table;
  node->alias = table->name();
  const RowSchema schema = TableRowSchema(*table);
  for (const auto& assign : stmt.assignments) {
    const int ordinal = table->schema().FindColumn(assign.column);
    if (ordinal < 0) {
      return Status::NotFound("column '" + assign.column +
                              "' not found in table '" + stmt.table + "'");
    }
    SQLCM_ASSIGN_OR_RETURN(auto bound, BoundExpr::Bind(*assign.value, schema));
    node->assignments.emplace_back(static_cast<size_t>(ordinal),
                                   std::move(bound));
  }
  SQLCM_RETURN_IF_ERROR(BindDmlPredicates(stmt.where.get(), schema, node.get()));
  return node;
}

Result<std::unique_ptr<LogicalPlan>> Planner::PlanDelete(
    const sql::DeleteStmt& stmt) {
  storage::Table* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  if (table->is_virtual()) {
    return Status::InvalidArgument("table '" + stmt.table +
                                   "' is a read-only system view");
  }
  auto node = std::make_unique<LogicalPlan>();
  node->op = LogicalOp::kDelete;
  node->table = table;
  node->alias = table->name();
  const RowSchema schema = TableRowSchema(*table);
  SQLCM_RETURN_IF_ERROR(BindDmlPredicates(stmt.where.get(), schema, node.get()));
  return node;
}

}  // namespace sqlcm::exec
