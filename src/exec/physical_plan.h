// Physical (execution) plans produced by the optimizer.
//
// A PhysicalPlan is immutable, shareable data: plan-cache entries hold one
// plan that many executions interpret concurrently (each execution carries
// its own runtime state). The physical plan signature (paper §4.2) is
// computed from this tree.
#ifndef SQLCM_EXEC_PHYSICAL_PLAN_H_
#define SQLCM_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/logical_plan.h"
#include "exec/row_schema.h"
#include "storage/table.h"

namespace sqlcm::exec {

enum class PhysOp : uint8_t {
  kSeqScan,
  kIndexSeek,    // equality on a key prefix
  kIndexRange,   // range on the first key column
  kFilter,
  kProject,
  kNestedLoopJoin,
  kIndexNLJoin,  // per outer row, index seek into the inner table
  kHashJoin,
  kHashAggregate,
  kSort,
  kLimit,
  kDistinct,
  kInsert,
  kUpdate,
  kDelete,
};

const char* PhysOpName(PhysOp op);

struct PhysicalPlan {
  PhysOp op;
  RowSchema output;
  std::vector<std::unique_ptr<PhysicalPlan>> children;

  // Optimizer estimates (Query.Estimated_Cost probes the root's est_cost).
  double est_rows = 0;
  double est_cost = 0;

  // Scans and DML targets.
  storage::Table* table = nullptr;
  std::string alias;
  std::string index_name;  // empty = primary (clustered) index

  // kIndexSeek: equality values for a key prefix. Constant expressions,
  // except in kIndexNLJoin where they are bound against the OUTER schema.
  std::vector<std::unique_ptr<BoundExpr>> seek_exprs;

  // kIndexRange: bounds on the first key column (constants; may be null).
  std::unique_ptr<BoundExpr> range_lo;
  std::unique_ptr<BoundExpr> range_hi;

  // kFilter / join residuals / DML WHERE (conjuncts over this node's input;
  // for joins, over the concatenated left++right schema).
  std::vector<std::unique_ptr<BoundExpr>> predicates;

  // kHashJoin equality keys (left_keys over left schema, right over right).
  std::vector<std::unique_ptr<BoundExpr>> left_keys;
  std::vector<std::unique_ptr<BoundExpr>> right_keys;

  // kProject
  std::vector<std::unique_ptr<BoundExpr>> project_exprs;
  std::vector<std::string> project_names;

  // kHashAggregate
  std::vector<std::unique_ptr<BoundExpr>> group_exprs;
  std::vector<AggSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  // kInsert
  std::vector<std::vector<std::unique_ptr<BoundExpr>>> insert_rows;

  // kUpdate
  std::vector<std::pair<size_t, std::unique_ptr<BoundExpr>>> assignments;

  /// Statement kind ("SELECT"/"INSERT"/"UPDATE"/"DELETE").
  const char* StatementType() const;

  /// Canonical linearization for the physical plan signature: operator
  /// names, access paths (table + index), and argument expressions with
  /// constants wildcarded when requested. Conjunct lists are sorted.
  void AppendSignature(bool wildcard_constants, std::string* out) const;

  /// Indented operator-tree rendering (EXPLAIN-style) for diagnostics.
  std::string Explain() const;
};

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_PHYSICAL_PLAN_H_
