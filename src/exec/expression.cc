#include "exec/expression.h"

namespace sqlcm::exec {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using sql::BinaryOp;
using sql::UnaryOp;

Result<Value> EvalComparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Comparable kinds: numeric vs numeric, string vs string, bool vs bool.
  const bool comparable =
      (lhs.is_numeric() && rhs.is_numeric()) ||
      (lhs.is_string() && rhs.is_string()) || (lhs.is_bool() && rhs.is_bool());
  if (!comparable) {
    return Status::TypeError("cannot compare " + lhs.ToString() + " with " +
                             rhs.ToString());
  }
  const int c = lhs.Compare(rhs);
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(c == 0);
    case BinaryOp::kNe: return Value::Bool(c != 0);
    case BinaryOp::kLt: return Value::Bool(c < 0);
    case BinaryOp::kLe: return Value::Bool(c <= 0);
    case BinaryOp::kGt: return Value::Bool(c > 0);
    case BinaryOp::kGe: return Value::Bool(c >= 0);
    default:
      return Status::Internal("EvalComparison called with non-comparison op");
  }
}

std::unique_ptr<BoundExpr> BoundExpr::MakeSlot(size_t slot) {
  auto out = std::unique_ptr<BoundExpr>(new BoundExpr());
  out->kind_ = Kind::kSlot;
  out->slot_ = slot;
  return out;
}

bool MatchLikePattern(std::string_view text, std::string_view pattern) {
  // Greedy match with backtracking over the last '%' (classic two-pointer
  // wildcard algorithm; linear in practice).
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalLike(const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (!lhs.is_string() || !rhs.is_string()) {
    return Status::TypeError("LIKE requires string operands");
  }
  return Value::Bool(MatchLikePattern(lhs.string_value(), rhs.string_value()));
}

Result<std::unique_ptr<BoundExpr>> BoundExpr::Bind(const sql::Expr& expr,
                                                   const RowSchema& schema) {
  auto bound = std::unique_ptr<BoundExpr>(new BoundExpr());
  switch (expr.kind) {
    case sql::ExprKind::kLiteral:
      bound->kind_ = Kind::kLiteral;
      bound->literal_ = expr.literal;
      return bound;
    case sql::ExprKind::kColumnRef: {
      SQLCM_ASSIGN_OR_RETURN(bound->slot_,
                             schema.Resolve(expr.table, expr.column));
      bound->kind_ = Kind::kSlot;
      return bound;
    }
    case sql::ExprKind::kParam:
      bound->kind_ = Kind::kParam;
      bound->param_name_ = expr.param_name;
      return bound;
    case sql::ExprKind::kUnary: {
      bound->kind_ = Kind::kUnary;
      bound->unary_op_ = expr.unary_op;
      SQLCM_ASSIGN_OR_RETURN(bound->left_, Bind(*expr.left, schema));
      return bound;
    }
    case sql::ExprKind::kBinary: {
      bound->kind_ = Kind::kBinary;
      bound->binary_op_ = expr.binary_op;
      SQLCM_ASSIGN_OR_RETURN(bound->left_, Bind(*expr.left, schema));
      SQLCM_ASSIGN_OR_RETURN(bound->right_, Bind(*expr.right, schema));
      return bound;
    }
    case sql::ExprKind::kFuncCall:
      return Status::InvalidArgument(
          "function '" + expr.func_name +
          "' is not valid here (aggregates only in SELECT with GROUP BY)");
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> BoundExpr::Eval(const Row& row, const ParamMap* params) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kSlot:
      if (slot_ >= row.size()) {
        return Status::Internal("slot out of range in expression");
      }
      return row[slot_];
    case Kind::kParam: {
      if (params == nullptr) {
        return Status::InvalidArgument("no bindings for parameter @" +
                                       param_name_);
      }
      auto it = params->find(param_name_);
      if (it == params->end()) {
        return Status::InvalidArgument("unbound parameter @" + param_name_);
      }
      return it->second;
    }
    case Kind::kUnary: {
      SQLCM_ASSIGN_OR_RETURN(Value v, left_->Eval(row, params));
      if (unary_op_ == UnaryOp::kNeg) return common::ValueNeg(v);
      // NOT with three-valued logic.
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) {
        return Status::TypeError("NOT applied to non-boolean " + v.ToString());
      }
      return Value::Bool(!v.bool_value());
    }
    case Kind::kBinary: {
      // AND/OR need short-circuit + three-valued logic.
      if (binary_op_ == BinaryOp::kAnd || binary_op_ == BinaryOp::kOr) {
        SQLCM_ASSIGN_OR_RETURN(Value l, left_->Eval(row, params));
        const bool is_and = binary_op_ == BinaryOp::kAnd;
        if (l.is_bool()) {
          if (is_and && !l.bool_value()) return Value::Bool(false);
          if (!is_and && l.bool_value()) return Value::Bool(true);
        } else if (!l.is_null()) {
          return Status::TypeError("AND/OR applied to non-boolean " +
                                   l.ToString());
        }
        SQLCM_ASSIGN_OR_RETURN(Value r, right_->Eval(row, params));
        if (r.is_bool()) {
          if (is_and && !r.bool_value()) return Value::Bool(false);
          if (!is_and && r.bool_value()) return Value::Bool(true);
        } else if (!r.is_null()) {
          return Status::TypeError("AND/OR applied to non-boolean " +
                                   r.ToString());
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(is_and ? (l.bool_value() && r.bool_value())
                                  : (l.bool_value() || r.bool_value()));
      }
      SQLCM_ASSIGN_OR_RETURN(Value l, left_->Eval(row, params));
      SQLCM_ASSIGN_OR_RETURN(Value r, right_->Eval(row, params));
      switch (binary_op_) {
        case BinaryOp::kAdd: return common::ValueAdd(l, r);
        case BinaryOp::kSub: return common::ValueSub(l, r);
        case BinaryOp::kMul: return common::ValueMul(l, r);
        case BinaryOp::kDiv: return common::ValueDiv(l, r);
        case BinaryOp::kMod: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (!l.is_int() || !r.is_int()) {
            return Status::TypeError("% requires integer operands");
          }
          if (r.int_value() == 0) {
            return Status::InvalidArgument("modulo by zero");
          }
          return Value::Int(l.int_value() % r.int_value());
        }
        case BinaryOp::kLike:
          return EvalLike(l, r);
        default:
          return EvalComparison(binary_op_, l, r);
      }
    }
  }
  return Status::Internal("unhandled bound expression kind");
}

Result<bool> BoundExpr::EvalBool(const Row& row, const ParamMap* params) const {
  SQLCM_ASSIGN_OR_RETURN(Value v, Eval(row, params));
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::TypeError("predicate did not evaluate to a boolean: " +
                             v.ToString());
  }
  return v.bool_value();
}

std::unique_ptr<BoundExpr> BoundExpr::CloneShifted(int delta) const {
  auto out = std::unique_ptr<BoundExpr>(new BoundExpr());
  out->kind_ = kind_;
  out->literal_ = literal_;
  out->slot_ = kind_ == Kind::kSlot
                   ? static_cast<size_t>(static_cast<int>(slot_) + delta)
                   : slot_;
  out->param_name_ = param_name_;
  out->unary_op_ = unary_op_;
  out->binary_op_ = binary_op_;
  if (left_ != nullptr) out->left_ = left_->CloneShifted(delta);
  if (right_ != nullptr) out->right_ = right_->CloneShifted(delta);
  return out;
}

std::unique_ptr<BoundExpr> BoundExpr::CloneRemapped(
    const std::vector<int>& mapping) const {
  auto out = std::unique_ptr<BoundExpr>(new BoundExpr());
  out->kind_ = kind_;
  out->literal_ = literal_;
  out->slot_ = kind_ == Kind::kSlot
                   ? static_cast<size_t>(mapping[slot_])
                   : slot_;
  out->param_name_ = param_name_;
  out->unary_op_ = unary_op_;
  out->binary_op_ = binary_op_;
  if (left_ != nullptr) out->left_ = left_->CloneRemapped(mapping);
  if (right_ != nullptr) out->right_ = right_->CloneRemapped(mapping);
  return out;
}

void BoundExpr::CollectSlots(std::vector<size_t>* slots) const {
  if (kind_ == Kind::kSlot) slots->push_back(slot_);
  if (left_ != nullptr) left_->CollectSlots(slots);
  if (right_ != nullptr) right_->CollectSlots(slots);
}

bool BoundExpr::IsConstant() const {
  switch (kind_) {
    case Kind::kLiteral:
    case Kind::kParam:
      return true;
    case Kind::kSlot:
      return false;
    case Kind::kUnary:
      return left_->IsConstant();
    case Kind::kBinary:
      return left_->IsConstant() && right_->IsConstant();
  }
  return false;
}

void BoundExpr::AppendSignature(bool wildcard_constants,
                                std::string* out) const {
  switch (kind_) {
    case Kind::kLiteral:
      if (wildcard_constants) {
        *out += "?";
      } else {
        *out += literal_.ToString();
      }
      return;
    case Kind::kSlot:
      *out += "#" + std::to_string(slot_);
      return;
    case Kind::kParam:
      // Identified parameters keep their identity so different parameters
      // never collide (paper §4.2, "symbol that matches only other
      // occurrences of P_i").
      *out += "$" + param_name_;
      return;
    case Kind::kUnary:
      *out += unary_op_ == UnaryOp::kNot ? "NOT(" : "NEG(";
      left_->AppendSignature(wildcard_constants, out);
      *out += ")";
      return;
    case Kind::kBinary:
      *out += "(";
      left_->AppendSignature(wildcard_constants, out);
      *out += sql::BinaryOpName(binary_op_);
      right_->AppendSignature(wildcard_constants, out);
      *out += ")";
      return;
  }
}

}  // namespace sqlcm::exec
