// Physical-plan interpreter (iterator model) and DML execution.
#ifndef SQLCM_EXEC_EXECUTOR_H_
#define SQLCM_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/physical_plan.h"
#include "txn/transaction.h"

namespace sqlcm::exec {

/// Per-execution state; one per statement execution. The plan itself is
/// shared and immutable.
struct ExecContext {
  txn::Transaction* txn = nullptr;
  txn::LockManager* locks = nullptr;
  common::Clock* clock = nullptr;
  const ParamMap* params = nullptr;

  /// When true, SELECT row accesses take shared row locks (repeatable-read
  /// style); default is latch-consistent read-committed reads.
  bool lock_rows_for_reads = false;
  int64_t lock_timeout_micros = -1;

  // Instrumentation (read by the monitoring hooks after execution).
  size_t rows_scanned = 0;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<common::Row> rows;
  size_t rows_affected = 0;  // DML only
};

class Executor {
 public:
  /// Runs `plan` to completion. SELECT plans return rows; DML plans return
  /// rows_affected. Deadlock/cancel surface as kDeadlock / kCancelled; the
  /// caller (session) decides transaction fate.
  static common::Result<QueryResult> Execute(const PhysicalPlan& plan,
                                             ExecContext* ctx);
};

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_EXECUTOR_H_
