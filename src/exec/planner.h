// Binder/planner: SQL AST -> logical plan.
#ifndef SQLCM_EXEC_PLANNER_H_
#define SQLCM_EXEC_PLANNER_H_

#include <memory>

#include "exec/logical_plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace sqlcm::exec {

class Planner {
 public:
  explicit Planner(storage::Catalog* catalog) : catalog_(catalog) {}

  /// Builds a logical plan for SELECT/INSERT/UPDATE/DELETE statements.
  /// Transaction-control, DDL and EXEC statements are handled directly by
  /// the engine and are rejected here.
  common::Result<std::unique_ptr<LogicalPlan>> Plan(
      const sql::Statement& stmt);

 private:
  common::Result<std::unique_ptr<LogicalPlan>> PlanSelect(
      const sql::SelectStmt& stmt);
  common::Result<std::unique_ptr<LogicalPlan>> PlanInsert(
      const sql::InsertStmt& stmt);
  common::Result<std::unique_ptr<LogicalPlan>> PlanUpdate(
      const sql::UpdateStmt& stmt);
  common::Result<std::unique_ptr<LogicalPlan>> PlanDelete(
      const sql::DeleteStmt& stmt);

  /// Makes a Get node for `ref`, with output columns qualified by its alias.
  common::Result<std::unique_ptr<LogicalPlan>> MakeGet(
      const sql::TableRef& ref);

  storage::Catalog* catalog_;
};

/// Splits an expression on top-level ANDs into conjuncts (borrowed views).
void SplitConjuncts(const sql::Expr& expr,
                    std::vector<const sql::Expr*>* conjuncts);

/// True if any aggregate function call appears in `expr`.
bool ContainsAggregate(const sql::Expr& expr);

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_PLANNER_H_
