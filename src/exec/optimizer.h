// Cost-based optimizer: logical plan -> physical plan.
//
// Scope (documented in DESIGN.md): access-path selection (clustered/
// secondary index seek, first-column range, sequential scan), predicate
// pushdown through left-deep join trees, and join-algorithm choice
// (index nested-loop, hash, nested-loop). No join reordering.
#ifndef SQLCM_EXEC_OPTIMIZER_H_
#define SQLCM_EXEC_OPTIMIZER_H_

#include <memory>

#include "exec/logical_plan.h"
#include "exec/physical_plan.h"

namespace sqlcm::exec {

class Optimizer {
 public:
  struct Options {
    /// Ablation switch: disable the join-order enumerator and keep the
    /// user-written join order (bench/bench_join_ordering.cc measures the
    /// difference).
    bool enable_join_reordering = true;
  };

  Optimizer() = default;
  explicit Optimizer(Options options) : options_(options) {}

  /// Produces a physical plan. The logical plan is not consumed (both are
  /// retained by plan-cache entries).
  common::Result<std::unique_ptr<PhysicalPlan>> Optimize(
      const LogicalPlan& logical);

 private:
  using ExprVec = std::vector<std::unique_ptr<BoundExpr>>;

  /// Optimizes a relational subtree (Get/Filter/Join) with predicates
  /// pushed down from above (bound against `rel`'s output schema).
  common::Result<std::unique_ptr<PhysicalPlan>> OptimizeRel(
      const LogicalPlan& rel, ExprVec preds);

  /// Picks the access path for one base table given conjuncts over its
  /// schema; wraps residual conjuncts in a Filter node.
  common::Result<std::unique_ptr<PhysicalPlan>> ChooseAccessPath(
      const LogicalPlan& get, ExprVec conjuncts);

  /// Join optimization: flattens the join tree and runs Selinger-style
  /// left-deep dynamic programming over relation orders (up to
  /// kMaxDpRelations); larger queries fall back to the pairwise path that
  /// keeps the user-written order.
  common::Result<std::unique_ptr<PhysicalPlan>> OptimizeJoin(
      const LogicalPlan& join, ExprVec preds);

  /// Pairwise fallback: joins children in the order written.
  common::Result<std::unique_ptr<PhysicalPlan>> PairwiseJoin(
      const LogicalPlan& join, ExprVec preds);

  static constexpr size_t kMaxDpRelations = 8;

  Options options_;
};

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_OPTIMIZER_H_
