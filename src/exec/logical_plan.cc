#include "exec/logical_plan.h"

#include <algorithm>

#include "common/string_util.h"

namespace sqlcm::exec {

using common::Result;
using common::Status;

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

Result<AggFunc> ParseAggFunc(std::string_view name) {
  if (common::EqualsIgnoreCase(name, "COUNT")) return AggFunc::kCount;
  if (common::EqualsIgnoreCase(name, "SUM")) return AggFunc::kSum;
  if (common::EqualsIgnoreCase(name, "AVG")) return AggFunc::kAvg;
  if (common::EqualsIgnoreCase(name, "MIN")) return AggFunc::kMin;
  if (common::EqualsIgnoreCase(name, "MAX")) return AggFunc::kMax;
  return Status::NotFound("unknown aggregate function '" + std::string(name) +
                          "'");
}

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kGet: return "Get";
    case LogicalOp::kFilter: return "Filter";
    case LogicalOp::kProject: return "Project";
    case LogicalOp::kJoin: return "Join";
    case LogicalOp::kAggregate: return "Aggregate";
    case LogicalOp::kSort: return "Sort";
    case LogicalOp::kLimit: return "Limit";
    case LogicalOp::kDistinct: return "Distinct";
    case LogicalOp::kInsert: return "Insert";
    case LogicalOp::kUpdate: return "Update";
    case LogicalOp::kDelete: return "Delete";
  }
  return "?";
}

const char* LogicalPlan::StatementType() const {
  switch (op) {
    case LogicalOp::kInsert: return "INSERT";
    case LogicalOp::kUpdate: return "UPDATE";
    case LogicalOp::kDelete: return "DELETE";
    default: return "SELECT";
  }
}

namespace {

/// Renders conjuncts sorted so that predicate order does not affect the
/// signature (paper §4.2: representations match "with the exception of
/// matching wildcards and predicate ordering").
void AppendSortedConjuncts(
    const std::vector<std::unique_ptr<BoundExpr>>& conjuncts,
    bool wildcard_constants, std::string* out) {
  std::vector<std::string> rendered;
  rendered.reserve(conjuncts.size());
  for (const auto& pred : conjuncts) {
    std::string s;
    pred->AppendSignature(wildcard_constants, &s);
    rendered.push_back(std::move(s));
  }
  std::sort(rendered.begin(), rendered.end());
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) *out += "&";
    *out += rendered[i];
  }
}

}  // namespace

void LogicalPlan::AppendSignature(bool wildcard_constants,
                                  std::string* out) const {
  *out += LogicalOpName(op);
  *out += "(";
  switch (op) {
    case LogicalOp::kGet:
      *out += table != nullptr ? table->name() : "?";
      break;
    case LogicalOp::kFilter:
    case LogicalOp::kJoin:
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
    case LogicalOp::kProject:
      for (size_t i = 0; i < project_exprs.size(); ++i) {
        if (i > 0) *out += ",";
        project_exprs[i]->AppendSignature(wildcard_constants, out);
      }
      break;
    case LogicalOp::kAggregate:
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (i > 0) *out += ",";
        group_exprs[i]->AppendSignature(wildcard_constants, out);
      }
      *out += ";";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) *out += ",";
        *out += AggFuncName(aggregates[i].func);
        *out += "(";
        if (aggregates[i].star) {
          *out += "*";
        } else {
          aggregates[i].arg->AppendSignature(wildcard_constants, out);
        }
        *out += ")";
      }
      break;
    case LogicalOp::kSort:
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) *out += ",";
        sort_keys[i].expr->AppendSignature(wildcard_constants, out);
        *out += sort_keys[i].descending ? " DESC" : " ASC";
      }
      break;
    case LogicalOp::kLimit:
      // The limit value is a constant; wildcard it like other constants.
      *out += wildcard_constants ? "?" : std::to_string(limit);
      break;
    case LogicalOp::kDistinct:
      break;  // no arguments

    case LogicalOp::kInsert:
      *out += table != nullptr ? table->name() : "?";
      *out += ";rows=";
      // Row *count* matters structurally; the values are constants.
      *out += wildcard_constants ? "?" : std::to_string(insert_rows.size());
      break;
    case LogicalOp::kUpdate:
      *out += table != nullptr ? table->name() : "?";
      *out += ";set=";
      for (size_t i = 0; i < assignments.size(); ++i) {
        if (i > 0) *out += ",";
        *out += "#" + std::to_string(assignments[i].first) + "=";
        assignments[i].second->AppendSignature(wildcard_constants, out);
      }
      *out += ";where=";
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
    case LogicalOp::kDelete:
      *out += table != nullptr ? table->name() : "?";
      *out += ";where=";
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
  }
  *out += ")";
  if (!children.empty()) {
    *out += "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) *out += ",";
      children[i]->AppendSignature(wildcard_constants, out);
    }
    *out += "]";
  }
}

}  // namespace sqlcm::exec
