// Bound (compiled) expressions: sql::Expr with column references resolved
// to row slots, evaluated against runtime rows with SQL NULL semantics.
#ifndef SQLCM_EXEC_EXPRESSION_H_
#define SQLCM_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/row_schema.h"
#include "sql/ast.h"

namespace sqlcm::exec {

/// Named-parameter bindings for one execution (@name -> value).
using ParamMap = std::unordered_map<std::string, common::Value>;

/// A compiled scalar expression tree. Immutable after Bind; shareable
/// across concurrent executions (cached plans).
class BoundExpr {
 public:
  enum class Kind : uint8_t { kLiteral, kSlot, kParam, kUnary, kBinary };

  /// Compiles `expr` against `schema`. Aggregate function calls are
  /// rejected here (the planner extracts them before binding); scalar
  /// functions are not supported.
  static common::Result<std::unique_ptr<BoundExpr>> Bind(
      const sql::Expr& expr, const RowSchema& schema);

  /// A bare slot reference (used by the optimizer for pass-through
  /// projections).
  static std::unique_ptr<BoundExpr> MakeSlot(size_t slot);

  /// Evaluates with SQL semantics: comparisons/arithmetic with a NULL
  /// operand yield NULL; AND/OR use three-valued logic.
  common::Result<common::Value> Eval(const common::Row& row,
                                     const ParamMap* params) const;

  /// Evaluates as a predicate: NULL and FALSE both reject.
  common::Result<bool> EvalBool(const common::Row& row,
                                const ParamMap* params) const;

  Kind kind() const { return kind_; }
  size_t slot() const { return slot_; }
  const common::Value& literal() const { return literal_; }
  sql::BinaryOp binary_op() const { return binary_op_; }
  sql::UnaryOp unary_op() const { return unary_op_; }
  const BoundExpr* left() const { return left_.get(); }
  const BoundExpr* right() const { return right_.get(); }
  const std::string& param_name() const { return param_name_; }

  /// True if no slot reference appears (constant w.r.t. the row).
  bool IsConstant() const;

  /// Deep copy with every slot index shifted by `delta` (used when pushing
  /// predicates through joins, whose output is left ++ right).
  std::unique_ptr<BoundExpr> CloneShifted(int delta) const;

  /// Deep copy with every slot `s` rewritten to `mapping[s]` (used by the
  /// join-order enumerator, which permutes relation layouts). Precondition:
  /// every referenced slot has a non-negative mapping entry.
  std::unique_ptr<BoundExpr> CloneRemapped(
      const std::vector<int>& mapping) const;

  /// Appends every referenced slot index (with duplicates).
  void CollectSlots(std::vector<size_t>* slots) const;

  /// Canonical rendering used by plan signatures: slots print as #N, and
  /// when `wildcard_constants` is set, literals print as '?' and params as
  /// '$name' (paper §4.2: constants are wildcarded, identified parameters
  /// keep their identity).
  void AppendSignature(bool wildcard_constants, std::string* out) const;

 private:
  BoundExpr() = default;

  Kind kind_ = Kind::kLiteral;
  common::Value literal_;
  size_t slot_ = 0;
  std::string param_name_;
  sql::UnaryOp unary_op_{};
  sql::BinaryOp binary_op_{};
  std::unique_ptr<BoundExpr> left_;
  std::unique_ptr<BoundExpr> right_;
};

/// Evaluates a comparison between two values with SQL NULL semantics.
/// Returns NULL Value if either side is NULL, else a Bool.
common::Result<common::Value> EvalComparison(sql::BinaryOp op,
                                             const common::Value& lhs,
                                             const common::Value& rhs);

/// SQL LIKE pattern matching: '%' matches any run (including empty),
/// '_' matches exactly one character; everything else matches literally.
/// Case-sensitive (matching the engine's string comparisons).
bool MatchLikePattern(std::string_view text, std::string_view pattern);

/// LIKE with SQL NULL semantics; TypeError unless both sides are strings.
common::Result<common::Value> EvalLike(const common::Value& lhs,
                                       const common::Value& rhs);

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_EXPRESSION_H_
