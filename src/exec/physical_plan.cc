#include "exec/physical_plan.h"

#include <algorithm>
#include <sstream>

namespace sqlcm::exec {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kSeqScan: return "SeqScan";
    case PhysOp::kIndexSeek: return "IndexSeek";
    case PhysOp::kIndexRange: return "IndexRange";
    case PhysOp::kFilter: return "Filter";
    case PhysOp::kProject: return "Project";
    case PhysOp::kNestedLoopJoin: return "NestedLoopJoin";
    case PhysOp::kIndexNLJoin: return "IndexNLJoin";
    case PhysOp::kHashJoin: return "HashJoin";
    case PhysOp::kHashAggregate: return "HashAggregate";
    case PhysOp::kSort: return "Sort";
    case PhysOp::kLimit: return "Limit";
    case PhysOp::kDistinct: return "Distinct";
    case PhysOp::kInsert: return "Insert";
    case PhysOp::kUpdate: return "Update";
    case PhysOp::kDelete: return "Delete";
  }
  return "?";
}

const char* PhysicalPlan::StatementType() const {
  switch (op) {
    case PhysOp::kInsert: return "INSERT";
    case PhysOp::kUpdate: return "UPDATE";
    case PhysOp::kDelete: return "DELETE";
    default: return "SELECT";
  }
}

namespace {

void AppendSortedConjuncts(
    const std::vector<std::unique_ptr<BoundExpr>>& conjuncts,
    bool wildcard_constants, std::string* out) {
  std::vector<std::string> rendered;
  rendered.reserve(conjuncts.size());
  for (const auto& pred : conjuncts) {
    std::string s;
    pred->AppendSignature(wildcard_constants, &s);
    rendered.push_back(std::move(s));
  }
  std::sort(rendered.begin(), rendered.end());
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) *out += "&";
    *out += rendered[i];
  }
}

void AppendExprList(const std::vector<std::unique_ptr<BoundExpr>>& exprs,
                    bool wildcard_constants, std::string* out) {
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) *out += ",";
    exprs[i]->AppendSignature(wildcard_constants, out);
  }
}

}  // namespace

void PhysicalPlan::AppendSignature(bool wildcard_constants,
                                   std::string* out) const {
  *out += PhysOpName(op);
  *out += "(";
  if (table != nullptr) {
    *out += table->name();
    if (!index_name.empty()) {
      *out += "@";
      *out += index_name;
    }
    *out += ";";
  }
  switch (op) {
    case PhysOp::kIndexSeek:
    case PhysOp::kIndexNLJoin:
      *out += "seek=";
      AppendExprList(seek_exprs, wildcard_constants, out);
      if (!predicates.empty()) {
        *out += ";resid=";
        AppendSortedConjuncts(predicates, wildcard_constants, out);
      }
      break;
    case PhysOp::kIndexRange:
      *out += "lo=";
      if (range_lo != nullptr) {
        range_lo->AppendSignature(wildcard_constants, out);
      }
      *out += ";hi=";
      if (range_hi != nullptr) {
        range_hi->AppendSignature(wildcard_constants, out);
      }
      break;
    case PhysOp::kFilter:
    case PhysOp::kNestedLoopJoin:
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
    case PhysOp::kHashJoin:
      *out += "l=";
      AppendExprList(left_keys, wildcard_constants, out);
      *out += ";r=";
      AppendExprList(right_keys, wildcard_constants, out);
      if (!predicates.empty()) {
        *out += ";resid=";
        AppendSortedConjuncts(predicates, wildcard_constants, out);
      }
      break;
    case PhysOp::kProject:
      AppendExprList(project_exprs, wildcard_constants, out);
      break;
    case PhysOp::kHashAggregate:
      AppendExprList(group_exprs, wildcard_constants, out);
      *out += ";";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) *out += ",";
        *out += AggFuncName(aggregates[i].func);
        *out += "(";
        if (aggregates[i].star) {
          *out += "*";
        } else {
          aggregates[i].arg->AppendSignature(wildcard_constants, out);
        }
        *out += ")";
      }
      break;
    case PhysOp::kSort:
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) *out += ",";
        sort_keys[i].expr->AppendSignature(wildcard_constants, out);
        *out += sort_keys[i].descending ? " DESC" : " ASC";
      }
      break;
    case PhysOp::kLimit:
      *out += wildcard_constants ? "?" : std::to_string(limit);
      break;
    case PhysOp::kInsert:
      *out += "rows=";
      *out += wildcard_constants ? "?" : std::to_string(insert_rows.size());
      break;
    case PhysOp::kUpdate:
      *out += "set=";
      for (size_t i = 0; i < assignments.size(); ++i) {
        if (i > 0) *out += ",";
        *out += "#" + std::to_string(assignments[i].first) + "=";
        assignments[i].second->AppendSignature(wildcard_constants, out);
      }
      *out += ";where=";
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
    case PhysOp::kDelete:
      *out += "where=";
      AppendSortedConjuncts(predicates, wildcard_constants, out);
      break;
    case PhysOp::kSeqScan:
      if (!predicates.empty()) {
        *out += "resid=";
        AppendSortedConjuncts(predicates, wildcard_constants, out);
      }
      break;
    case PhysOp::kDistinct:
      break;  // no arguments
  }
  *out += ")";
  if (!children.empty()) {
    *out += "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) *out += ",";
      children[i]->AppendSignature(wildcard_constants, out);
    }
    *out += "]";
  }
}

namespace {

void ExplainRec(const PhysicalPlan& plan, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << PhysOpName(plan.op);
  if (plan.table != nullptr) {
    *out << " " << plan.table->name();
    if (!plan.index_name.empty()) *out << " (index " << plan.index_name << ")";
  }
  *out << "  [rows=" << plan.est_rows << " cost=" << plan.est_cost << "]";
  if (!plan.predicates.empty()) {
    *out << " pred=";
    std::string s;
    AppendSortedConjuncts(plan.predicates, false, &s);
    *out << s;
  }
  *out << "\n";
  for (const auto& child : plan.children) {
    ExplainRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalPlan::Explain() const {
  std::ostringstream out;
  ExplainRec(*this, 0, &out);
  return out.str();
}

}  // namespace sqlcm::exec
