#include "exec/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace sqlcm::exec {

using common::Result;
using common::Status;

namespace {

// Selectivity guesses (no histograms; see DESIGN.md).
constexpr double kEqSelectivity = 0.05;
constexpr double kRangeSelectivity = 0.3;
constexpr double kFilterSelectivity = 0.2;
constexpr double kJoinSelectivity = 0.1;

/// If `pred` is `slot = const` (either side), returns the slot and clones
/// the constant side into *constant.
bool MatchEqConst(const BoundExpr& pred, size_t* slot,
                  std::unique_ptr<BoundExpr>* constant) {
  if (pred.kind() != BoundExpr::Kind::kBinary ||
      pred.binary_op() != sql::BinaryOp::kEq) {
    return false;
  }
  const BoundExpr* l = pred.left();
  const BoundExpr* r = pred.right();
  if (l->kind() == BoundExpr::Kind::kSlot && r->IsConstant()) {
    *slot = l->slot();
    *constant = r->CloneShifted(0);
    return true;
  }
  if (r->kind() == BoundExpr::Kind::kSlot && l->IsConstant()) {
    *slot = r->slot();
    *constant = l->CloneShifted(0);
    return true;
  }
  return false;
}

/// If `pred` is a range comparison between a slot and a constant, returns
/// the slot, the constant, and whether the constant is a lower bound for
/// the slot (slot > c / slot >= c / c < slot / c <= slot).
bool MatchRangeConst(const BoundExpr& pred, size_t* slot,
                     std::unique_ptr<BoundExpr>* constant, bool* is_lower) {
  if (pred.kind() != BoundExpr::Kind::kBinary) return false;
  const sql::BinaryOp op = pred.binary_op();
  if (op != sql::BinaryOp::kLt && op != sql::BinaryOp::kLe &&
      op != sql::BinaryOp::kGt && op != sql::BinaryOp::kGe) {
    return false;
  }
  const BoundExpr* l = pred.left();
  const BoundExpr* r = pred.right();
  const bool gt_like = op == sql::BinaryOp::kGt || op == sql::BinaryOp::kGe;
  if (l->kind() == BoundExpr::Kind::kSlot && r->IsConstant()) {
    *slot = l->slot();
    *constant = r->CloneShifted(0);
    *is_lower = gt_like;  // slot > c  => c is lower bound
    return true;
  }
  if (r->kind() == BoundExpr::Kind::kSlot && l->IsConstant()) {
    *slot = r->slot();
    *constant = l->CloneShifted(0);
    *is_lower = !gt_like;  // c > slot => c is upper bound
    return true;
  }
  return false;
}

/// [min_slot, max_slot] over every slot referenced; {-1,-1} if none.
std::pair<int, int> SlotRange(const BoundExpr& expr) {
  std::vector<size_t> slots;
  expr.CollectSlots(&slots);
  if (slots.empty()) return {-1, -1};
  const auto [mn, mx] = std::minmax_element(slots.begin(), slots.end());
  return {static_cast<int>(*mn), static_cast<int>(*mx)};
}

using ExprVec = std::vector<std::unique_ptr<BoundExpr>>;

std::unique_ptr<PhysicalPlan> WrapFilter(std::unique_ptr<PhysicalPlan> child,
                                         ExprVec residual) {
  if (residual.empty()) return child;
  auto filter = std::make_unique<PhysicalPlan>();
  filter->op = PhysOp::kFilter;
  filter->output = child->output;
  filter->predicates = std::move(residual);
  filter->est_rows = std::max(
      1.0, child->est_rows *
               std::pow(kFilterSelectivity,
                        static_cast<double>(filter->predicates.size())));
  filter->est_cost = child->est_cost + child->est_rows * 0.01;
  filter->children.push_back(std::move(child));
  return filter;
}

}  // namespace

Result<std::unique_ptr<PhysicalPlan>> Optimizer::Optimize(
    const LogicalPlan& logical) {
  switch (logical.op) {
    case LogicalOp::kGet:
    case LogicalOp::kFilter:
    case LogicalOp::kJoin:
      return OptimizeRel(logical, {});

    case LogicalOp::kProject: {
      SQLCM_ASSIGN_OR_RETURN(auto child, Optimize(*logical.children[0]));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kProject;
      node->output = logical.output;
      for (const auto& e : logical.project_exprs) {
        node->project_exprs.push_back(e->CloneShifted(0));
      }
      node->project_names = logical.project_names;
      node->est_rows = child->est_rows;
      node->est_cost = child->est_cost + child->est_rows * 0.005;
      node->children.push_back(std::move(child));
      return node;
    }
    case LogicalOp::kAggregate: {
      SQLCM_ASSIGN_OR_RETURN(auto child, Optimize(*logical.children[0]));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kHashAggregate;
      node->output = logical.output;
      for (const auto& e : logical.group_exprs) {
        node->group_exprs.push_back(e->CloneShifted(0));
      }
      for (const auto& spec : logical.aggregates) {
        AggSpec copy;
        copy.func = spec.func;
        copy.star = spec.star;
        copy.output_name = spec.output_name;
        if (spec.arg != nullptr) copy.arg = spec.arg->CloneShifted(0);
        node->aggregates.push_back(std::move(copy));
      }
      node->est_rows =
          logical.group_exprs.empty() ? 1 : std::max(1.0, child->est_rows / 10);
      node->est_cost = child->est_cost + child->est_rows * 0.02;
      node->children.push_back(std::move(child));
      return node;
    }
    case LogicalOp::kSort: {
      SQLCM_ASSIGN_OR_RETURN(auto child, Optimize(*logical.children[0]));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kSort;
      node->output = logical.output;
      for (const auto& key : logical.sort_keys) {
        SortKey copy;
        copy.expr = key.expr->CloneShifted(0);
        copy.descending = key.descending;
        node->sort_keys.push_back(std::move(copy));
      }
      const double n = std::max(1.0, child->est_rows);
      node->est_rows = n;
      node->est_cost = child->est_cost + n * std::log2(n + 1) * 0.01;
      node->children.push_back(std::move(child));
      return node;
    }
    case LogicalOp::kDistinct: {
      SQLCM_ASSIGN_OR_RETURN(auto child, Optimize(*logical.children[0]));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kDistinct;
      node->output = logical.output;
      node->est_rows = std::max(1.0, child->est_rows / 2);
      node->est_cost = child->est_cost + child->est_rows * 0.02;
      node->children.push_back(std::move(child));
      return node;
    }
    case LogicalOp::kLimit: {
      SQLCM_ASSIGN_OR_RETURN(auto child, Optimize(*logical.children[0]));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kLimit;
      node->output = logical.output;
      node->limit = logical.limit;
      node->est_rows =
          std::min(child->est_rows, static_cast<double>(logical.limit));
      node->est_cost = child->est_cost;
      node->children.push_back(std::move(child));
      return node;
    }
    case LogicalOp::kInsert: {
      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kInsert;
      node->table = logical.table;
      node->alias = logical.alias;
      for (const auto& row : logical.insert_rows) {
        std::vector<std::unique_ptr<BoundExpr>> copy;
        copy.reserve(row.size());
        for (const auto& e : row) copy.push_back(e->CloneShifted(0));
        node->insert_rows.push_back(std::move(copy));
      }
      node->est_rows = static_cast<double>(node->insert_rows.size());
      node->est_cost = node->est_rows *
                       std::log2(logical.table->row_count() + 2.0) * 0.01;
      return node;
    }
    case LogicalOp::kUpdate:
    case LogicalOp::kDelete: {
      // Reuse access-path selection: build a synthetic Get for the target,
      // choose the path, then fold the scan fields into the DML node so the
      // executor can pair storage keys with qualifying rows.
      LogicalPlan get;
      get.op = LogicalOp::kGet;
      get.table = logical.table;
      get.alias = logical.alias;
      ExprVec preds;
      for (const auto& p : logical.predicates) {
        preds.push_back(p->CloneShifted(0));
      }
      SQLCM_ASSIGN_OR_RETURN(auto access,
                             ChooseAccessPath(get, std::move(preds)));
      auto node = std::make_unique<PhysicalPlan>();
      node->op = logical.op == LogicalOp::kUpdate ? PhysOp::kUpdate
                                                  : PhysOp::kDelete;
      node->table = logical.table;
      node->alias = logical.alias;
      // Flatten Filter(Scan) / Scan into the DML node.
      PhysicalPlan* scan = access.get();
      if (scan->op == PhysOp::kFilter) {
        node->predicates = std::move(scan->predicates);
        scan = scan->children[0].get();
      }
      node->index_name = scan->index_name;
      node->seek_exprs = std::move(scan->seek_exprs);
      node->range_lo = std::move(scan->range_lo);
      node->range_hi = std::move(scan->range_hi);
      // Remember which access shape was chosen via a child marker node.
      auto marker = std::make_unique<PhysicalPlan>();
      marker->op = scan->op;
      marker->table = logical.table;
      marker->alias = logical.alias;
      marker->index_name = node->index_name;
      marker->est_rows = scan->est_rows;
      marker->est_cost = scan->est_cost;
      node->est_rows = access->est_rows;
      node->est_cost = access->est_cost + access->est_rows * 0.05;
      node->children.push_back(std::move(marker));
      for (const auto& [ordinal, expr] : logical.assignments) {
        node->assignments.emplace_back(ordinal, expr->CloneShifted(0));
      }
      return node;
    }
  }
  return Status::Internal("unhandled logical operator");
}

Result<std::unique_ptr<PhysicalPlan>> Optimizer::OptimizeRel(
    const LogicalPlan& rel, ExprVec preds) {
  switch (rel.op) {
    case LogicalOp::kGet:
      return ChooseAccessPath(rel, std::move(preds));
    case LogicalOp::kFilter: {
      for (const auto& p : rel.predicates) {
        preds.push_back(p->CloneShifted(0));
      }
      return OptimizeRel(*rel.children[0], std::move(preds));
    }
    case LogicalOp::kJoin:
      return OptimizeJoin(rel, std::move(preds));
    default:
      return Status::Internal(
          "OptimizeRel called on non-relational operator");
  }
}

Result<std::unique_ptr<PhysicalPlan>> Optimizer::PairwiseJoin(
    const LogicalPlan& join, ExprVec preds) {
  const LogicalPlan& left = *join.children[0];
  const LogicalPlan& right = *join.children[1];
  const int left_width = static_cast<int>(left.output.size());

  for (const auto& p : join.predicates) {
    preds.push_back(p->CloneShifted(0));
  }

  // Partition conjuncts by the side(s) they reference.
  ExprVec left_preds;
  ExprVec right_preds_shifted;  // for pushing into a standalone right scan
  ExprVec right_preds_combined;  // unshifted, for INLJ residual use
  ExprVec cross;
  for (auto& p : preds) {
    const auto [mn, mx] = SlotRange(*p);
    if (mx < left_width) {  // includes constant-only preds (mn = mx = -1)
      left_preds.push_back(std::move(p));
    } else if (mn >= left_width) {
      right_preds_shifted.push_back(p->CloneShifted(-left_width));
      right_preds_combined.push_back(std::move(p));
    } else {
      cross.push_back(std::move(p));
    }
  }

  SQLCM_ASSIGN_OR_RETURN(auto left_phys,
                         OptimizeRel(left, std::move(left_preds)));

  // --- Try index nested-loop: an equi-conjunct whose inner side is a slot
  // with an index (or clustered key) on it.
  if (right.op == LogicalOp::kGet) {
    for (size_t ci = 0; ci < cross.size(); ++ci) {
      const BoundExpr& p = *cross[ci];
      if (p.kind() != BoundExpr::Kind::kBinary ||
          p.binary_op() != sql::BinaryOp::kEq) {
        continue;
      }
      const BoundExpr* a = p.left();
      const BoundExpr* b = p.right();
      if (a->kind() != BoundExpr::Kind::kSlot ||
          b->kind() != BoundExpr::Kind::kSlot) {
        continue;
      }
      const BoundExpr* outer = nullptr;
      const BoundExpr* inner = nullptr;
      if (static_cast<int>(a->slot()) < left_width &&
          static_cast<int>(b->slot()) >= left_width) {
        outer = a;
        inner = b;
      } else if (static_cast<int>(b->slot()) < left_width &&
                 static_cast<int>(a->slot()) >= left_width) {
        outer = b;
        inner = a;
      } else {
        continue;
      }
      const size_t inner_col = inner->slot() - static_cast<size_t>(left_width);
      auto index = right.table->FindIndexOnColumn(inner_col);
      if (!index.has_value()) continue;

      auto node = std::make_unique<PhysicalPlan>();
      node->op = PhysOp::kIndexNLJoin;
      node->table = right.table;
      node->alias = right.alias;
      node->index_name = *index;
      node->output = join.output;
      node->seek_exprs.push_back(outer->CloneShifted(0));
      // Residuals: remaining cross conjuncts + right-only conjuncts, all
      // over the combined schema.
      for (size_t cj = 0; cj < cross.size(); ++cj) {
        if (cj != ci) node->predicates.push_back(std::move(cross[cj]));
      }
      for (auto& rp : right_preds_combined) {
        node->predicates.push_back(std::move(rp));
      }
      const double inner_rows = std::max(
          1.0, static_cast<double>(right.table->row_count()) * kEqSelectivity);
      node->est_rows = std::max(1.0, left_phys->est_rows * inner_rows *
                                         (node->predicates.empty() ? 1.0
                                                                   : 0.5));
      node->est_cost =
          left_phys->est_cost +
          left_phys->est_rows *
              (std::log2(right.table->row_count() + 2.0) * 0.01 + inner_rows);
      node->children.push_back(std::move(left_phys));
      return node;
    }
  }

  // --- Hash join on equi-conjuncts with disjoint sides.
  ExprVec left_keys, right_keys, residual;
  for (auto& p : cross) {
    if (p == nullptr) continue;
    bool used = false;
    if (p->kind() == BoundExpr::Kind::kBinary &&
        p->binary_op() == sql::BinaryOp::kEq) {
      const auto [lmn, lmx] = SlotRange(*p->left());
      const auto [rmn, rmx] = SlotRange(*p->right());
      if (lmx < left_width && lmn >= 0 && rmn >= left_width) {
        left_keys.push_back(p->left()->CloneShifted(0));
        right_keys.push_back(p->right()->CloneShifted(-left_width));
        used = true;
      } else if (rmx < left_width && rmn >= 0 && lmn >= left_width) {
        left_keys.push_back(p->right()->CloneShifted(0));
        right_keys.push_back(p->left()->CloneShifted(-left_width));
        used = true;
      }
    }
    if (!used) residual.push_back(std::move(p));
  }

  SQLCM_ASSIGN_OR_RETURN(auto right_phys,
                         OptimizeRel(right, std::move(right_preds_shifted)));

  auto node = std::make_unique<PhysicalPlan>();
  node->output = join.output;
  if (!left_keys.empty()) {
    node->op = PhysOp::kHashJoin;
    node->left_keys = std::move(left_keys);
    node->right_keys = std::move(right_keys);
    node->predicates = std::move(residual);
    node->est_rows = std::max(
        1.0, left_phys->est_rows * right_phys->est_rows * kJoinSelectivity *
                 kEqSelectivity);
    node->est_cost = left_phys->est_cost + right_phys->est_cost +
                     left_phys->est_rows + right_phys->est_rows;
  } else {
    node->op = PhysOp::kNestedLoopJoin;
    node->predicates = std::move(residual);
    node->est_rows = std::max(1.0, left_phys->est_rows *
                                       right_phys->est_rows *
                                       kJoinSelectivity);
    node->est_cost = left_phys->est_cost +
                     left_phys->est_rows * std::max(1.0, right_phys->est_cost);
  }
  node->children.push_back(std::move(left_phys));
  node->children.push_back(std::move(right_phys));
  return node;
}

Result<std::unique_ptr<PhysicalPlan>> Optimizer::ChooseAccessPath(
    const LogicalPlan& get, ExprVec conjuncts) {
  storage::Table* table = get.table;
  const double table_rows = static_cast<double>(table->row_count());

  // Equality candidates: column ordinal -> conjunct index.
  struct EqCandidate {
    size_t conjunct_idx;
    std::unique_ptr<BoundExpr> constant;
  };
  std::vector<std::pair<size_t, EqCandidate>> eq;  // (ordinal, candidate)
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    size_t slot;
    std::unique_ptr<BoundExpr> constant;
    if (MatchEqConst(*conjuncts[i], &slot, &constant)) {
      eq.emplace_back(slot, EqCandidate{i, std::move(constant)});
    }
  }
  auto find_eq = [&eq](size_t ordinal) -> EqCandidate* {
    for (auto& [col, cand] : eq) {
      if (col == ordinal && cand.constant != nullptr) return &cand;
    }
    return nullptr;
  };

  // Longest usable key prefix per index; primary ("") first so ties prefer
  // the clustered index.
  struct PathChoice {
    std::string index_name;
    std::vector<size_t> prefix_cols;
    bool unique_full_key = false;
  };
  PathChoice best;
  auto consider = [&](const std::string& index_name,
                      const std::vector<size_t>& key_cols, bool can_be_unique) {
    std::vector<size_t> prefix;
    for (size_t col : key_cols) {
      if (find_eq(col) == nullptr) break;
      prefix.push_back(col);
    }
    if (prefix.size() > best.prefix_cols.size()) {
      best.index_name = index_name;
      best.prefix_cols = std::move(prefix);
      best.unique_full_key =
          can_be_unique && best.prefix_cols.size() == key_cols.size();
    }
  };
  if (table->schema().has_primary_key()) {
    consider("", table->schema().primary_key(), /*can_be_unique=*/true);
  }
  for (const auto& info : table->indexes()) {
    consider(info.name, info.columns, /*can_be_unique=*/false);
  }

  auto scan = std::make_unique<PhysicalPlan>();
  scan->table = table;
  scan->alias = get.alias;
  scan->output = get.output;

  std::vector<bool> consumed(conjuncts.size(), false);
  if (!best.prefix_cols.empty()) {
    scan->op = PhysOp::kIndexSeek;
    scan->index_name = best.index_name;
    for (size_t col : best.prefix_cols) {
      EqCandidate* cand = find_eq(col);
      scan->seek_exprs.push_back(std::move(cand->constant));
      consumed[cand->conjunct_idx] = true;
    }
    scan->est_rows =
        best.unique_full_key
            ? 1.0
            : std::max(1.0, table_rows * std::pow(kEqSelectivity,
                                                  static_cast<double>(
                                                      best.prefix_cols.size())));
    scan->est_cost = std::log2(table_rows + 2.0) * 0.01 + scan->est_rows;
  } else {
    // Range on the first column of some index?
    struct RangeChoice {
      std::string index_name;
      std::unique_ptr<BoundExpr> lo, hi;
      bool found = false;
    };
    RangeChoice range;
    auto try_range_on = [&](const std::string& index_name, size_t first_col) {
      if (range.found) return;
      std::unique_ptr<BoundExpr> lo, hi;
      for (auto& c : conjuncts) {
        size_t slot;
        std::unique_ptr<BoundExpr> constant;
        bool is_lower;
        if (MatchRangeConst(*c, &slot, &constant, &is_lower) &&
            slot == first_col) {
          if (is_lower && lo == nullptr) lo = std::move(constant);
          else if (!is_lower && hi == nullptr) hi = std::move(constant);
        }
      }
      if (lo != nullptr || hi != nullptr) {
        range.index_name = index_name;
        range.lo = std::move(lo);
        range.hi = std::move(hi);
        range.found = true;
      }
    };
    if (table->schema().has_primary_key()) {
      try_range_on("", table->schema().primary_key()[0]);
    }
    for (const auto& info : table->indexes()) {
      try_range_on(info.name, info.columns[0]);
    }
    if (range.found) {
      scan->op = PhysOp::kIndexRange;
      scan->index_name = range.index_name;
      scan->range_lo = std::move(range.lo);
      scan->range_hi = std::move(range.hi);
      const bool both = scan->range_lo != nullptr && scan->range_hi != nullptr;
      scan->est_rows = std::max(
          1.0, table_rows * (both ? kRangeSelectivity * kRangeSelectivity
                                  : kRangeSelectivity));
      scan->est_cost = std::log2(table_rows + 2.0) * 0.01 + scan->est_rows;
      // Range conjuncts stay as residuals for exact (strict) bounds.
    } else {
      scan->op = PhysOp::kSeqScan;
      scan->est_rows = std::max(1.0, table_rows);
      scan->est_cost = std::max(1.0, table_rows);
    }
  }

  ExprVec residual;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!consumed[i] && conjuncts[i] != nullptr) {
      residual.push_back(std::move(conjuncts[i]));
    }
  }
  return WrapFilter(std::move(scan), std::move(residual));
}

// ---------------------------------------------------------------------------
// Join-order enumeration (Selinger-style left-deep dynamic programming)
// ---------------------------------------------------------------------------

namespace {

/// One base relation of a flattened join tree.
struct RelInfo {
  const LogicalPlan* get = nullptr;
  size_t offset = 0;  // slot offset in the original (as-written) layout
  size_t width = 0;
};

/// A predicate over the original layout plus the set of relations it
/// references.
struct TaggedPred {
  std::unique_ptr<BoundExpr> expr;  // original-layout slots
  uint32_t mask = 0;
};

/// Collects base relations and all join predicates of a join subtree.
/// Every predicate in the tree is bound against a prefix of the original
/// concatenated layout, so they share one slot space.
Status FlattenJoinTree(const LogicalPlan& node,
                       std::vector<const LogicalPlan*>* rels,
                       ExprVec* preds) {
  if (node.op == LogicalOp::kGet) {
    rels->push_back(&node);
    return Status::OK();
  }
  if (node.op == LogicalOp::kJoin) {
    SQLCM_RETURN_IF_ERROR(FlattenJoinTree(*node.children[0], rels, preds));
    SQLCM_RETURN_IF_ERROR(FlattenJoinTree(*node.children[1], rels, preds));
    for (const auto& p : node.predicates) preds->push_back(p->CloneShifted(0));
    return Status::OK();
  }
  return Status::Internal("unexpected operator inside a join tree");
}

/// Relation index owning an original-layout slot.
size_t OwnerRelation(const std::vector<RelInfo>& rels, size_t slot) {
  for (size_t i = 0; i < rels.size(); ++i) {
    if (slot >= rels[i].offset && slot < rels[i].offset + rels[i].width) {
      return i;
    }
  }
  return rels.size();  // unreachable for well-formed plans
}

uint32_t PredMask(const std::vector<RelInfo>& rels, const BoundExpr& expr) {
  std::vector<size_t> slots;
  expr.CollectSlots(&slots);
  uint32_t mask = 0;
  for (size_t slot : slots) {
    mask |= 1u << OwnerRelation(rels, slot);
  }
  return mask;
}

/// Slot mapping original-layout -> candidate layout for a relation order.
std::vector<int> LayoutMapping(const std::vector<RelInfo>& rels,
                               const std::vector<size_t>& order,
                               size_t total_width) {
  std::vector<int> mapping(total_width, -1);
  size_t cursor = 0;
  for (size_t rel : order) {
    for (size_t k = 0; k < rels[rel].width; ++k) {
      mapping[rels[rel].offset + k] = static_cast<int>(cursor + k);
    }
    cursor += rels[rel].width;
  }
  return mapping;
}

enum class JoinAlgo : uint8_t { kIndexNL, kHash, kNestedLoop };

/// Cost/row estimates (and, when `build`, the physical node) for joining
/// `left` with base relation `rel_idx`. `eligible` are the join conjuncts
/// applied at this step (original layout); `inner_single` are the inner
/// relation's single-relation conjuncts (original layout) that become
/// residuals when the inner side is accessed by index seek.
struct JoinStep {
  JoinAlgo algo = JoinAlgo::kNestedLoop;
  double cost = 0;
  double rows = 0;
  std::unique_ptr<PhysicalPlan> plan;  // only when build
};

}  // namespace

Result<std::unique_ptr<PhysicalPlan>> Optimizer::OptimizeJoin(
    const LogicalPlan& join, ExprVec preds) {
  std::vector<const LogicalPlan*> rel_nodes;
  ExprVec all_preds = std::move(preds);
  SQLCM_RETURN_IF_ERROR(FlattenJoinTree(join, &rel_nodes, &all_preds));
  const size_t n = rel_nodes.size();
  if (!options_.enable_join_reordering || n < 2 || n > kMaxDpRelations) {
    // Fallback keeps the user-written order. all_preds contains flattened
    // copies of the join-tree conjuncts, which PairwiseJoin re-derives from
    // the tree itself; applying a conjunct twice is semantically a no-op,
    // so simply hand everything down.
    return PairwiseJoin(join, std::move(all_preds));
  }

  std::vector<RelInfo> rels(n);
  size_t total_width = 0;
  for (size_t i = 0; i < n; ++i) {
    rels[i].get = rel_nodes[i];
    rels[i].offset = total_width;
    rels[i].width = rel_nodes[i]->output.size();
    total_width += rels[i].width;
  }

  // Classify predicates.
  std::vector<ExprVec> single_rel(n);  // original layout
  std::vector<TaggedPred> join_preds;
  ExprVec const_preds;
  for (auto& p : all_preds) {
    const uint32_t mask = PredMask(rels, *p);
    const int bits = __builtin_popcount(mask);
    if (bits == 0) {
      const_preds.push_back(std::move(p));
    } else if (bits == 1) {
      const size_t rel = static_cast<size_t>(__builtin_ctz(mask));
      single_rel[rel].push_back(std::move(p));
    } else {
      join_preds.push_back({std::move(p), mask});
    }
  }

  // Base access paths (estimates now; plans consumed during reconstruction).
  std::vector<std::unique_ptr<PhysicalPlan>> base_plans(n);
  std::vector<double> base_cost(n), base_rows(n);
  for (size_t i = 0; i < n; ++i) {
    ExprVec local;
    for (const auto& p : single_rel[i]) {
      local.push_back(p->CloneShifted(-static_cast<int>(rels[i].offset)));
    }
    SQLCM_ASSIGN_OR_RETURN(base_plans[i],
                           ChooseAccessPath(*rels[i].get, std::move(local)));
    base_cost[i] = base_plans[i]->est_cost;
    base_rows[i] = base_plans[i]->est_rows;
  }

  // Evaluates (or builds) the step joining `left_order` with relation `i`.
  auto EvaluateStep = [&](const std::vector<size_t>& left_order,
                          double left_cost, double left_rows, size_t i,
                          uint32_t subset_mask, bool build,
                          std::unique_ptr<PhysicalPlan> left_plan)
      -> Result<JoinStep> {
    JoinStep step;
    // Candidate layout = left_order ++ [i].
    std::vector<size_t> order = left_order;
    order.push_back(i);
    const std::vector<int> mapping = LayoutMapping(rels, order, total_width);

    // Conjuncts applied at this step: they touch relation i and only
    // relations inside the subset.
    std::vector<const TaggedPred*> eligible;
    for (const TaggedPred& tp : join_preds) {
      if ((tp.mask & (1u << i)) == 0) continue;
      if ((tp.mask & ~subset_mask) != 0) continue;
      eligible.push_back(&tp);
    }

    // Try index nested-loop: an equi-conjunct slot(outer) = slot(inner)
    // where the inner column has an index.
    const TaggedPred* inl_pred = nullptr;
    std::string inl_index;
    std::unique_ptr<BoundExpr> inl_outer;
    for (const TaggedPred* tp : eligible) {
      const BoundExpr& p = *tp->expr;
      if (p.kind() != BoundExpr::Kind::kBinary ||
          p.binary_op() != sql::BinaryOp::kEq) {
        continue;
      }
      const BoundExpr* a = p.left();
      const BoundExpr* b = p.right();
      if (a->kind() != BoundExpr::Kind::kSlot ||
          b->kind() != BoundExpr::Kind::kSlot) {
        continue;
      }
      const BoundExpr* outer = nullptr;
      const BoundExpr* inner = nullptr;
      if (OwnerRelation(rels, a->slot()) == i &&
          OwnerRelation(rels, b->slot()) != i) {
        inner = a;
        outer = b;
      } else if (OwnerRelation(rels, b->slot()) == i &&
                 OwnerRelation(rels, a->slot()) != i) {
        inner = b;
        outer = a;
      } else {
        continue;
      }
      const size_t inner_col = inner->slot() - rels[i].offset;
      auto index = rels[i].get->table->FindIndexOnColumn(inner_col);
      if (!index.has_value()) continue;
      inl_pred = tp;
      inl_index = *index;
      inl_outer = outer->CloneRemapped(mapping);
      break;
    }

    storage::Table* inner_table = rels[i].get->table;
    const double inner_n = static_cast<double>(inner_table->row_count());

    if (inl_pred != nullptr) {
      step.algo = JoinAlgo::kIndexNL;
      // Seeking the full (single-column) primary key yields exactly one row.
      const bool unique_seek =
          inl_index.empty() &&
          inner_table->schema().primary_key().size() == 1;
      const double eq_rows =
          unique_seek ? 1.0 : std::max(1.0, inner_n * kEqSelectivity);
      const size_t residual_count =
          eligible.size() - 1 + single_rel[i].size();
      step.rows = std::max(
          1.0, left_rows * eq_rows * (residual_count > 0 ? 0.5 : 1.0));
      step.cost = left_cost +
                  left_rows * (std::log2(inner_n + 2.0) * 0.01 + eq_rows);
      if (build) {
        auto node = std::make_unique<PhysicalPlan>();
        node->op = PhysOp::kIndexNLJoin;
        node->table = inner_table;
        node->alias = rels[i].get->alias;
        node->index_name = inl_index;
        for (const auto& col : left_plan->output.columns()) {
          node->output.Append(col);
        }
        node->output.AppendAll(rels[i].get->output);
        node->seek_exprs.push_back(std::move(inl_outer));
        for (const TaggedPred* tp : eligible) {
          if (tp == inl_pred) continue;
          node->predicates.push_back(tp->expr->CloneRemapped(mapping));
        }
        for (const auto& p : single_rel[i]) {
          node->predicates.push_back(p->CloneRemapped(mapping));
        }
        node->est_rows = step.rows;
        node->est_cost = step.cost;
        node->children.push_back(std::move(left_plan));
        step.plan = std::move(node);
      }
      return step;
    }

    // Hash join on equi-conjuncts with disjoint sides; otherwise NLJ.
    std::vector<const TaggedPred*> hash_eqs;
    for (const TaggedPred* tp : eligible) {
      const BoundExpr& p = *tp->expr;
      if (p.kind() == BoundExpr::Kind::kBinary &&
          p.binary_op() == sql::BinaryOp::kEq) {
        // One side must reference only relation i, the other only left
        // relations.
        const uint32_t lmask = PredMask(rels, *p.left());
        const uint32_t rmask = PredMask(rels, *p.right());
        const bool left_is_inner = lmask == (1u << i) && rmask != 0 &&
                                   (rmask & (1u << i)) == 0;
        const bool right_is_inner = rmask == (1u << i) && lmask != 0 &&
                                    (lmask & (1u << i)) == 0;
        if (left_is_inner || right_is_inner) hash_eqs.push_back(tp);
      }
    }

    if (!hash_eqs.empty()) {
      step.algo = JoinAlgo::kHash;
      step.rows = std::max(1.0, left_rows * base_rows[i] * kJoinSelectivity *
                                    kEqSelectivity);
      step.cost = left_cost + base_cost[i] + left_rows + base_rows[i];
    } else {
      step.algo = JoinAlgo::kNestedLoop;
      step.rows = std::max(1.0, left_rows * base_rows[i] * kJoinSelectivity);
      step.cost = left_cost + left_rows * std::max(1.0, base_cost[i]);
    }
    if (build) {
      // The inner side is the base access path for relation i; its layout
      // is relation-local, which matches the candidate layout's suffix.
      std::unique_ptr<PhysicalPlan> right_plan;
      if (base_plans[i] != nullptr) {
        right_plan = std::move(base_plans[i]);
      } else {
        ExprVec local;
        for (const auto& p : single_rel[i]) {
          local.push_back(p->CloneShifted(-static_cast<int>(rels[i].offset)));
        }
        SQLCM_ASSIGN_OR_RETURN(
            right_plan, ChooseAccessPath(*rels[i].get, std::move(local)));
      }
      auto node = std::make_unique<PhysicalPlan>();
      node->op = step.algo == JoinAlgo::kHash ? PhysOp::kHashJoin
                                              : PhysOp::kNestedLoopJoin;
      for (const auto& col : left_plan->output.columns()) {
        node->output.Append(col);
      }
      node->output.AppendAll(right_plan->output);
      if (step.algo == JoinAlgo::kHash) {
        for (const TaggedPred* tp : hash_eqs) {
          const BoundExpr& p = *tp->expr;
          const uint32_t lmask = PredMask(rels, *p.left());
          const BoundExpr* inner_side =
              lmask == (1u << i) ? p.left() : p.right();
          const BoundExpr* outer_side =
              lmask == (1u << i) ? p.right() : p.left();
          node->left_keys.push_back(outer_side->CloneRemapped(mapping));
          // Right keys are bound against the inner relation's local layout.
          node->right_keys.push_back(
              inner_side->CloneShifted(-static_cast<int>(rels[i].offset)));
        }
        for (const TaggedPred* tp : eligible) {
          if (std::find(hash_eqs.begin(), hash_eqs.end(), tp) !=
              hash_eqs.end()) {
            continue;
          }
          node->predicates.push_back(tp->expr->CloneRemapped(mapping));
        }
      } else {
        for (const TaggedPred* tp : eligible) {
          node->predicates.push_back(tp->expr->CloneRemapped(mapping));
        }
      }
      node->est_rows = step.rows;
      node->est_cost = step.cost;
      node->children.push_back(std::move(left_plan));
      node->children.push_back(std::move(right_plan));
      step.plan = std::move(node);
    }
    return step;
  };

  // --- DP over subsets (left-deep). ---
  struct DpEntry {
    bool valid = false;
    double cost = 0;
    double rows = 0;
    size_t last = 0;  // relation joined last
    std::vector<size_t> order;
  };
  std::vector<DpEntry> dp(1u << n);
  for (size_t i = 0; i < n; ++i) {
    DpEntry& e = dp[1u << i];
    e.valid = true;
    e.cost = base_cost[i];
    e.rows = base_rows[i];
    e.last = i;
    e.order = {i};
  }
  for (uint32_t subset = 1; subset < (1u << n); ++subset) {
    if (__builtin_popcount(subset) < 2) continue;
    DpEntry& entry = dp[subset];
    for (size_t i = 0; i < n; ++i) {
      if ((subset & (1u << i)) == 0) continue;
      const DpEntry& left = dp[subset ^ (1u << i)];
      if (!left.valid) continue;
      SQLCM_ASSIGN_OR_RETURN(
          JoinStep step,
          EvaluateStep(left.order, left.cost, left.rows, i, subset,
                       /*build=*/false, nullptr));
      if (!entry.valid || step.cost < entry.cost) {
        entry.valid = true;
        entry.cost = step.cost;
        entry.rows = step.rows;
        entry.last = i;
        entry.order = left.order;
        entry.order.push_back(i);
      }
    }
  }

  // --- Reconstruct the winning plan. ---
  const uint32_t full = (1u << n) - 1;
  std::function<Result<std::unique_ptr<PhysicalPlan>>(uint32_t)> build_plan =
      [&](uint32_t subset) -> Result<std::unique_ptr<PhysicalPlan>> {
    const DpEntry& entry = dp[subset];
    if (__builtin_popcount(subset) == 1) {
      return std::move(base_plans[entry.last]);
    }
    const uint32_t left_subset = subset ^ (1u << entry.last);
    SQLCM_ASSIGN_OR_RETURN(auto left_plan, build_plan(left_subset));
    const DpEntry& left = dp[left_subset];
    SQLCM_ASSIGN_OR_RETURN(
        JoinStep step,
        EvaluateStep(left.order, left.cost, left.rows, entry.last, subset,
                     /*build=*/true, std::move(left_plan)));
    return std::move(step.plan);
  };
  SQLCM_ASSIGN_OR_RETURN(auto plan, build_plan(full));

  // Constant-only conjuncts apply once on top.
  if (!const_preds.empty()) {
    plan = WrapFilter(std::move(plan), std::move(const_preds));
  }

  // Restore the as-written column layout if the enumerator reordered
  // relations (parents bound their expressions against that layout).
  const std::vector<size_t>& final_order = dp[full].order;
  bool identity = true;
  for (size_t i = 0; i < final_order.size(); ++i) {
    if (final_order[i] != i) identity = false;
  }
  if (identity) {
    plan->output = join.output;
    return plan;
  }
  const std::vector<int> mapping =
      LayoutMapping(rels, final_order, total_width);
  auto project = std::make_unique<PhysicalPlan>();
  project->op = PhysOp::kProject;
  project->output = join.output;
  for (size_t slot = 0; slot < total_width; ++slot) {
    project->project_exprs.push_back(
        BoundExpr::MakeSlot(static_cast<size_t>(mapping[slot])));
    project->project_names.push_back(join.output.column(slot).name);
  }
  project->est_rows = plan->est_rows;
  project->est_cost = plan->est_cost + plan->est_rows * 0.005;
  project->children.push_back(std::move(plan));
  return std::unique_ptr<PhysicalPlan>(std::move(project));
}

}  // namespace sqlcm::exec
