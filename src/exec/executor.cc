#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sqlcm::exec {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

namespace {

Status LockOutcomeToStatus(txn::LockOutcome outcome) {
  switch (outcome) {
    case txn::LockOutcome::kGranted:
      return Status::OK();
    case txn::LockOutcome::kDeadlock:
      return Status::Deadlock("transaction chosen as deadlock victim");
    case txn::LockOutcome::kCancelled:
      return Status::Cancelled("query cancelled while waiting for a lock");
    case txn::LockOutcome::kTimeout:
      return Status::Aborted("lock wait timeout");
  }
  return Status::Internal("unknown lock outcome");
}

Status AcquireRowLock(ExecContext* ctx, const storage::Table& table,
                      const Row& key, txn::LockMode mode) {
  txn::ResourceId resource{table.table_id(), key};
  return LockOutcomeToStatus(
      ctx->locks->Acquire(ctx->txn->id(), resource, mode,
                          ctx->txn->cancelled_flag(),
                          ctx->lock_timeout_micros));
}

Status CheckCancelled(const ExecContext& ctx) {
  if (ctx.txn != nullptr && ctx.txn->cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Iterator operators
// ---------------------------------------------------------------------------

class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  /// Produces the next row into *row; Result is false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
};

Result<std::unique_ptr<Operator>> BuildOperator(const PhysicalPlan& plan,
                                                ExecContext* ctx);

/// Base for operators that materialize (key,row) pairs from a table access
/// and then emit the rows.
class ScanBase : public Operator {
 public:
  ScanBase(const PhysicalPlan& plan, ExecContext* ctx)
      : plan_(plan), ctx_(ctx) {}

  Result<bool> Next(Row* row) override {
    while (pos_ < rows_.size()) {
      SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx_));
      const size_t i = pos_++;
      ++ctx_->rows_scanned;
      if (ctx_->lock_rows_for_reads) {
        SQLCM_RETURN_IF_ERROR(AcquireRowLock(ctx_, *plan_.table, keys_[i],
                                             txn::LockMode::kShared));
      }
      *row = rows_[i];
      return true;
    }
    return false;
  }

 protected:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::vector<Row> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class SeqScanOp final : public ScanBase {
 public:
  using ScanBase::ScanBase;
  Status Open() override {
    // Batched copy-out; the table latch is released between batches.
    std::optional<Row> after;
    std::vector<Row> batch_keys, batch_rows;
    for (;;) {
      SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx_));
      batch_keys.clear();
      batch_rows.clear();
      if (plan_.table->ScanBatch(after, 1024, &batch_keys, &batch_rows) == 0) {
        break;
      }
      after = batch_keys.back();
      for (size_t i = 0; i < batch_keys.size(); ++i) {
        keys_.push_back(std::move(batch_keys[i]));
        rows_.push_back(std::move(batch_rows[i]));
      }
    }
    return Status::OK();
  }
};

class IndexSeekOp final : public ScanBase {
 public:
  using ScanBase::ScanBase;
  Status Open() override {
    Row prefix;
    prefix.reserve(plan_.seek_exprs.size());
    for (const auto& e : plan_.seek_exprs) {
      SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval({}, ctx_->params));
      prefix.push_back(std::move(v));
    }
    return plan_.table->IndexPrefixLookup(plan_.index_name, prefix, &keys_,
                                          &rows_);
  }
};

class IndexRangeOp final : public ScanBase {
 public:
  using ScanBase::ScanBase;
  Status Open() override {
    std::optional<Value> lo, hi;
    if (plan_.range_lo != nullptr) {
      SQLCM_ASSIGN_OR_RETURN(Value v, plan_.range_lo->Eval({}, ctx_->params));
      lo = std::move(v);
    }
    if (plan_.range_hi != nullptr) {
      SQLCM_ASSIGN_OR_RETURN(Value v, plan_.range_hi->Eval({}, ctx_->params));
      hi = std::move(v);
    }
    return plan_.table->IndexRangeLookup(plan_.index_name, lo, hi, &keys_,
                                         &rows_);
  }
};

class FilterOp final : public Operator {
 public:
  FilterOp(const PhysicalPlan& plan, ExecContext* ctx,
           std::unique_ptr<Operator> child)
      : plan_(plan), ctx_(ctx), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    for (;;) {
      SQLCM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      bool pass = true;
      for (const auto& pred : plan_.predicates) {
        SQLCM_ASSIGN_OR_RETURN(pass, pred->EvalBool(*row, ctx_->params));
        if (!pass) break;
      }
      if (pass) return true;
    }
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(const PhysicalPlan& plan, ExecContext* ctx,
            std::unique_ptr<Operator> child)
      : plan_(plan), ctx_(ctx), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    Row input;
    SQLCM_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
    if (!has) return false;
    row->clear();
    row->reserve(plan_.project_exprs.size());
    for (const auto& e : plan_.project_exprs) {
      SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval(input, ctx_->params));
      row->push_back(std::move(v));
    }
    return true;
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
};

class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(const PhysicalPlan& plan, ExecContext* ctx,
                   std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right)
      : plan_(plan), ctx_(ctx), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open() override {
    SQLCM_RETURN_IF_ERROR(left_->Open());
    SQLCM_RETURN_IF_ERROR(right_->Open());
    // Materialize the inner side once.
    Row row;
    for (;;) {
      auto has = right_->Next(&row);
      if (!has.ok()) return has.status();
      if (!*has) break;
      inner_.push_back(row);
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    for (;;) {
      SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx_));
      if (!outer_valid_) {
        SQLCM_ASSIGN_OR_RETURN(outer_valid_, left_->Next(&outer_));
        if (!outer_valid_) return false;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_.size()) {
        const Row& inner = inner_[inner_pos_++];
        Row combined = outer_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        bool pass = true;
        for (const auto& pred : plan_.predicates) {
          SQLCM_ASSIGN_OR_RETURN(pass, pred->EvalBool(combined, ctx_->params));
          if (!pass) break;
        }
        if (pass) {
          *row = std::move(combined);
          return true;
        }
      }
      outer_valid_ = false;
    }
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<Row> inner_;
  Row outer_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;
};

class IndexNLJoinOp final : public Operator {
 public:
  IndexNLJoinOp(const PhysicalPlan& plan, ExecContext* ctx,
                std::unique_ptr<Operator> outer)
      : plan_(plan), ctx_(ctx), outer_op_(std::move(outer)) {}

  Status Open() override { return outer_op_->Open(); }

  Result<bool> Next(Row* row) override {
    for (;;) {
      SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx_));
      while (match_pos_ < matches_.size()) {
        const Row& inner = matches_[match_pos_++];
        Row combined = outer_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        bool pass = true;
        for (const auto& pred : plan_.predicates) {
          SQLCM_ASSIGN_OR_RETURN(pass, pred->EvalBool(combined, ctx_->params));
          if (!pass) break;
        }
        if (pass) {
          *row = std::move(combined);
          return true;
        }
      }
      SQLCM_ASSIGN_OR_RETURN(bool has, outer_op_->Next(&outer_));
      if (!has) return false;
      // Seek the inner table with values computed from the outer row.
      Row prefix;
      prefix.reserve(plan_.seek_exprs.size());
      for (const auto& e : plan_.seek_exprs) {
        SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval(outer_, ctx_->params));
        prefix.push_back(std::move(v));
      }
      matches_.clear();
      match_keys_.clear();
      match_pos_ = 0;
      SQLCM_RETURN_IF_ERROR(plan_.table->IndexPrefixLookup(
          plan_.index_name, prefix, &match_keys_, &matches_));
      ctx_->rows_scanned += matches_.size();
      if (ctx_->lock_rows_for_reads) {
        for (const Row& key : match_keys_) {
          SQLCM_RETURN_IF_ERROR(
              AcquireRowLock(ctx_, *plan_.table, key, txn::LockMode::kShared));
        }
      }
    }
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> outer_op_;
  Row outer_;
  std::vector<Row> match_keys_;
  std::vector<Row> matches_;
  size_t match_pos_ = 0;
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(const PhysicalPlan& plan, ExecContext* ctx,
             std::unique_ptr<Operator> left, std::unique_ptr<Operator> right)
      : plan_(plan), ctx_(ctx), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open() override {
    SQLCM_RETURN_IF_ERROR(left_->Open());
    SQLCM_RETURN_IF_ERROR(right_->Open());
    // Build side: right child.
    Row row;
    for (;;) {
      auto has = right_->Next(&row);
      if (!has.ok()) return has.status();
      if (!*has) break;
      Row key;
      key.reserve(plan_.right_keys.size());
      for (const auto& e : plan_.right_keys) {
        auto v = e->Eval(row, ctx_->params);
        if (!v.ok()) return v.status();
        key.push_back(std::move(*v));
      }
      build_[std::move(key)].push_back(row);
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    for (;;) {
      SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx_));
      while (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        const Row& inner = (*bucket_)[bucket_pos_++];
        Row combined = outer_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        bool pass = true;
        for (const auto& pred : plan_.predicates) {
          SQLCM_ASSIGN_OR_RETURN(pass, pred->EvalBool(combined, ctx_->params));
          if (!pass) break;
        }
        if (pass) {
          *row = std::move(combined);
          return true;
        }
      }
      SQLCM_ASSIGN_OR_RETURN(bool has, left_->Next(&outer_));
      if (!has) return false;
      Row key;
      key.reserve(plan_.left_keys.size());
      for (const auto& e : plan_.left_keys) {
        SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval(outer_, ctx_->params));
        key.push_back(std::move(v));
      }
      auto it = build_.find(key);
      bucket_ = it == build_.end() ? nullptr : &it->second;
      bucket_pos_ = 0;
    }
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::unordered_map<Row, std::vector<Row>, common::RowHasher, common::RowEq>
      build_;
  Row outer_;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

/// Aggregation state for one (group, aggregate) cell.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min, max;
};

class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(const PhysicalPlan& plan, ExecContext* ctx,
                  std::unique_ptr<Operator> child)
      : plan_(plan), ctx_(ctx), child_(std::move(child)) {}

  Status Open() override {
    SQLCM_RETURN_IF_ERROR(child_->Open());
    Row row;
    std::unordered_map<Row, std::vector<AggState>, common::RowHasher,
                       common::RowEq>
        groups;
    for (;;) {
      auto has = child_->Next(&row);
      if (!has.ok()) return has.status();
      if (!*has) break;
      Row key;
      key.reserve(plan_.group_exprs.size());
      for (const auto& e : plan_.group_exprs) {
        auto v = e->Eval(row, ctx_->params);
        if (!v.ok()) return v.status();
        key.push_back(std::move(*v));
      }
      auto [it, inserted] =
          groups.try_emplace(std::move(key), plan_.aggregates.size());
      std::vector<AggState>& states = it->second;
      for (size_t a = 0; a < plan_.aggregates.size(); ++a) {
        const AggSpec& spec = plan_.aggregates[a];
        AggState& state = states[a];
        if (spec.star) {
          ++state.count;
          continue;
        }
        auto v = spec.arg->Eval(row, ctx_->params);
        if (!v.ok()) return v.status();
        if (v->is_null()) continue;  // SQL: NULLs ignored by aggregates
        ++state.count;
        if (v->is_numeric()) state.sum += v->AsDouble();
        if (!state.any || v->Compare(state.min) < 0) state.min = *v;
        if (!state.any || v->Compare(state.max) > 0) state.max = *v;
        state.any = true;
      }
    }
    // Global aggregation over empty input still yields one row.
    if (groups.empty() && plan_.group_exprs.empty()) {
      groups.try_emplace(Row{}, plan_.aggregates.size());
    }
    for (auto& [key, states] : groups) {
      Row out = key;
      for (size_t a = 0; a < plan_.aggregates.size(); ++a) {
        const AggSpec& spec = plan_.aggregates[a];
        const AggState& st = states[a];
        switch (spec.func) {
          case AggFunc::kCount:
            out.push_back(Value::Int(st.count));
            break;
          case AggFunc::kSum:
            out.push_back(st.count > 0 ? Value::Double(st.sum) : Value::Null());
            break;
          case AggFunc::kAvg:
            out.push_back(st.count > 0
                              ? Value::Double(st.sum /
                                              static_cast<double>(st.count))
                              : Value::Null());
            break;
          case AggFunc::kMin:
            out.push_back(st.any ? st.min : Value::Null());
            break;
          case AggFunc::kMax:
            out.push_back(st.any ? st.max : Value::Null());
            break;
        }
      }
      results_.push_back(std::move(out));
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    if (pos_ >= results_.size()) return false;
    *row = std::move(results_[pos_++]);
    return true;
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class SortOp final : public Operator {
 public:
  SortOp(const PhysicalPlan& plan, ExecContext* ctx,
         std::unique_ptr<Operator> child)
      : plan_(plan), ctx_(ctx), child_(std::move(child)) {}

  Status Open() override {
    SQLCM_RETURN_IF_ERROR(child_->Open());
    Row row;
    for (;;) {
      auto has = child_->Next(&row);
      if (!has.ok()) return has.status();
      if (!*has) break;
      rows_.push_back(std::move(row));
    }
    // Precompute sort keys per row to keep the comparator cheap and
    // error-free.
    std::vector<std::pair<Row, size_t>> keyed;
    keyed.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      Row key;
      key.reserve(plan_.sort_keys.size());
      for (const auto& sk : plan_.sort_keys) {
        auto v = sk.expr->Eval(rows_[i], ctx_->params);
        if (!v.ok()) return v.status();
        key.push_back(std::move(*v));
      }
      keyed.emplace_back(std::move(key), i);
    }
    const auto& sort_keys = plan_.sort_keys;
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&sort_keys](const auto& a, const auto& b) {
                       for (size_t k = 0; k < sort_keys.size(); ++k) {
                         int c = a.first[k].Compare(b.first[k]);
                         if (sort_keys[k].descending) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(rows_.size());
    for (const auto& [key, idx] : keyed) sorted.push_back(std::move(rows_[idx]));
    rows_ = std::move(sorted);
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = std::move(rows_[pos_++]);
    return true;
  }

 private:
  const PhysicalPlan& plan_;
  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    for (;;) {
      SQLCM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      if (seen_.insert(*row).second) return true;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_set<Row, common::RowHasher, common::RowEq> seen_;
};

class LimitOp final : public Operator {
 public:
  LimitOp(const PhysicalPlan& plan, std::unique_ptr<Operator> child)
      : plan_(plan), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    if (emitted_ >= plan_.limit) return false;
    SQLCM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    return true;
  }

 private:
  const PhysicalPlan& plan_;
  std::unique_ptr<Operator> child_;
  int64_t emitted_ = 0;
};

Result<std::unique_ptr<Operator>> BuildOperator(const PhysicalPlan& plan,
                                                ExecContext* ctx) {
  switch (plan.op) {
    case PhysOp::kSeqScan:
      return std::unique_ptr<Operator>(new SeqScanOp(plan, ctx));
    case PhysOp::kIndexSeek:
      return std::unique_ptr<Operator>(new IndexSeekOp(plan, ctx));
    case PhysOp::kIndexRange:
      return std::unique_ptr<Operator>(new IndexRangeOp(plan, ctx));
    case PhysOp::kFilter: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(
          new FilterOp(plan, ctx, std::move(child)));
    }
    case PhysOp::kProject: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(
          new ProjectOp(plan, ctx, std::move(child)));
    }
    case PhysOp::kNestedLoopJoin: {
      SQLCM_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.children[0], ctx));
      SQLCM_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.children[1], ctx));
      return std::unique_ptr<Operator>(
          new NestedLoopJoinOp(plan, ctx, std::move(left), std::move(right)));
    }
    case PhysOp::kIndexNLJoin: {
      SQLCM_ASSIGN_OR_RETURN(auto outer, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(
          new IndexNLJoinOp(plan, ctx, std::move(outer)));
    }
    case PhysOp::kHashJoin: {
      SQLCM_ASSIGN_OR_RETURN(auto left, BuildOperator(*plan.children[0], ctx));
      SQLCM_ASSIGN_OR_RETURN(auto right, BuildOperator(*plan.children[1], ctx));
      return std::unique_ptr<Operator>(
          new HashJoinOp(plan, ctx, std::move(left), std::move(right)));
    }
    case PhysOp::kHashAggregate: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(
          new HashAggregateOp(plan, ctx, std::move(child)));
    }
    case PhysOp::kSort: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(new SortOp(plan, ctx, std::move(child)));
    }
    case PhysOp::kLimit: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(new LimitOp(plan, std::move(child)));
    }
    case PhysOp::kDistinct: {
      SQLCM_ASSIGN_OR_RETURN(auto child, BuildOperator(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(new DistinctOp(std::move(child)));
    }
    default:
      return Status::Internal("BuildOperator on DML node");
  }
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Result<size_t> ExecuteInsert(const PhysicalPlan& plan, ExecContext* ctx) {
  size_t inserted = 0;
  for (const auto& row_exprs : plan.insert_rows) {
    SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx));
    Row row;
    row.reserve(row_exprs.size());
    for (const auto& e : row_exprs) {
      SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval({}, ctx->params));
      row.push_back(std::move(v));
    }
    if (plan.table->schema().has_primary_key()) {
      SQLCM_ASSIGN_OR_RETURN(Row validated,
                             plan.table->schema().ValidateRow(row));
      const Row key = plan.table->schema().KeyOf(validated);
      SQLCM_RETURN_IF_ERROR(
          AcquireRowLock(ctx, *plan.table, key, txn::LockMode::kExclusive));
      SQLCM_ASSIGN_OR_RETURN(Row stored_key,
                             plan.table->Insert(std::move(validated)));
      ctx->txn->LogInsert(plan.table->table_id(), stored_key);
    } else {
      SQLCM_ASSIGN_OR_RETURN(Row stored_key, plan.table->Insert(std::move(row)));
      // Fresh rowid: no conflict possible, lock after the fact for 2PL
      // consistency with updates/deletes.
      SQLCM_RETURN_IF_ERROR(AcquireRowLock(ctx, *plan.table, stored_key,
                                           txn::LockMode::kExclusive));
      ctx->txn->LogInsert(plan.table->table_id(), stored_key);
    }
    ++inserted;
  }
  return inserted;
}

/// Enumerates candidate (key, row) pairs for UPDATE/DELETE using the access
/// path folded into the DML node (children[0] is a marker carrying the
/// chosen access shape).
Status CollectDmlCandidates(const PhysicalPlan& plan, ExecContext* ctx,
                            std::vector<Row>* keys, std::vector<Row>* rows) {
  const PhysOp access = plan.children.empty() ? PhysOp::kSeqScan
                                              : plan.children[0]->op;
  switch (access) {
    case PhysOp::kIndexSeek: {
      Row prefix;
      for (const auto& e : plan.seek_exprs) {
        SQLCM_ASSIGN_OR_RETURN(Value v, e->Eval({}, ctx->params));
        prefix.push_back(std::move(v));
      }
      return plan.table->IndexPrefixLookup(plan.index_name, prefix, keys, rows);
    }
    case PhysOp::kIndexRange: {
      std::optional<Value> lo, hi;
      if (plan.range_lo != nullptr) {
        SQLCM_ASSIGN_OR_RETURN(Value v, plan.range_lo->Eval({}, ctx->params));
        lo = std::move(v);
      }
      if (plan.range_hi != nullptr) {
        SQLCM_ASSIGN_OR_RETURN(Value v, plan.range_hi->Eval({}, ctx->params));
        hi = std::move(v);
      }
      return plan.table->IndexRangeLookup(plan.index_name, lo, hi, keys, rows);
    }
    default: {
      std::optional<Row> after;
      std::vector<Row> bkeys, brows;
      for (;;) {
        SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx));
        bkeys.clear();
        brows.clear();
        if (plan.table->ScanBatch(after, 1024, &bkeys, &brows) == 0) break;
        after = bkeys.back();
        for (size_t i = 0; i < bkeys.size(); ++i) {
          keys->push_back(std::move(bkeys[i]));
          rows->push_back(std::move(brows[i]));
        }
      }
      return Status::OK();
    }
  }
}

/// Lock-then-recheck loop shared by UPDATE and DELETE: candidates were
/// collected without locks, so after acquiring the X lock the row is
/// re-read and the predicate re-verified (it may have changed or vanished).
Result<size_t> ExecuteUpdateOrDelete(const PhysicalPlan& plan,
                                     ExecContext* ctx) {
  std::vector<Row> keys, rows;
  SQLCM_RETURN_IF_ERROR(CollectDmlCandidates(plan, ctx, &keys, &rows));
  ctx->rows_scanned += rows.size();

  size_t affected = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    SQLCM_RETURN_IF_ERROR(CheckCancelled(*ctx));
    // Cheap pre-filter on the (possibly stale) candidate row to avoid
    // locking rows that obviously do not qualify.
    bool maybe = true;
    for (const auto& pred : plan.predicates) {
      SQLCM_ASSIGN_OR_RETURN(maybe, pred->EvalBool(rows[i], ctx->params));
      if (!maybe) break;
    }
    if (!maybe) continue;

    SQLCM_RETURN_IF_ERROR(
        AcquireRowLock(ctx, *plan.table, keys[i], txn::LockMode::kExclusive));
    auto current = plan.table->Get(keys[i]);
    if (!current.has_value()) continue;  // deleted before we locked
    bool pass = true;
    for (const auto& pred : plan.predicates) {
      SQLCM_ASSIGN_OR_RETURN(pass, pred->EvalBool(*current, ctx->params));
      if (!pass) break;
    }
    if (!pass) continue;

    if (plan.op == PhysOp::kDelete) {
      SQLCM_ASSIGN_OR_RETURN(Row old_row, plan.table->Delete(keys[i]));
      ctx->txn->LogDelete(plan.table->table_id(), keys[i], std::move(old_row));
    } else {
      Row new_row = *current;
      for (const auto& [ordinal, expr] : plan.assignments) {
        SQLCM_ASSIGN_OR_RETURN(Value v, expr->Eval(*current, ctx->params));
        new_row[ordinal] = std::move(v);
      }
      SQLCM_ASSIGN_OR_RETURN(Row old_row,
                             plan.table->Update(keys[i], std::move(new_row)));
      ctx->txn->LogUpdate(plan.table->table_id(), keys[i], std::move(old_row));
    }
    ++affected;
  }
  return affected;
}

}  // namespace

Result<QueryResult> Executor::Execute(const PhysicalPlan& plan,
                                      ExecContext* ctx) {
  QueryResult result;
  switch (plan.op) {
    case PhysOp::kInsert: {
      SQLCM_ASSIGN_OR_RETURN(result.rows_affected, ExecuteInsert(plan, ctx));
      return result;
    }
    case PhysOp::kUpdate:
    case PhysOp::kDelete: {
      SQLCM_ASSIGN_OR_RETURN(result.rows_affected,
                             ExecuteUpdateOrDelete(plan, ctx));
      return result;
    }
    default: {
      for (const auto& col : plan.output.columns()) {
        result.column_names.push_back(col.name);
      }
      SQLCM_ASSIGN_OR_RETURN(auto root, BuildOperator(plan, ctx));
      SQLCM_RETURN_IF_ERROR(root->Open());
      Row row;
      for (;;) {
        SQLCM_ASSIGN_OR_RETURN(bool has, root->Next(&row));
        if (!has) break;
        result.rows.push_back(std::move(row));
      }
      return result;
    }
  }
}

}  // namespace sqlcm::exec
