#include "exec/row_schema.h"

#include "common/string_util.h"

namespace sqlcm::exec {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;

Result<size_t> RowSchema::Resolve(std::string_view qualifier,
                                  std::string_view name) const {
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const BindingColumn& col = columns_[i];
    if (!EqualsIgnoreCase(col.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(col.qualifier, qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     std::string(name) + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::string full = qualifier.empty()
                           ? std::string(name)
                           : std::string(qualifier) + "." + std::string(name);
    return Status::NotFound("column '" + full + "' not found");
  }
  return static_cast<size_t>(found);
}

}  // namespace sqlcm::exec
