// Column layout of intermediate rows flowing between plan operators.
#ifndef SQLCM_EXEC_ROW_SCHEMA_H_
#define SQLCM_EXEC_ROW_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"

namespace sqlcm::exec {

struct BindingColumn {
  std::string qualifier;  // table alias; empty for computed columns
  std::string name;
  catalog::ColumnType type;
};

/// Ordered column layout; supports the name resolution rules of SQL
/// (unqualified names must be unambiguous).
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<BindingColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<BindingColumn>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const BindingColumn& column(size_t i) const { return columns_[i]; }

  void Append(BindingColumn col) { columns_.push_back(std::move(col)); }

  /// Appends all columns of `other` (join output layout).
  void AppendAll(const RowSchema& other) {
    for (const auto& c : other.columns_) columns_.push_back(c);
  }

  /// Resolves a (possibly qualified) column reference to a slot.
  /// InvalidArgument on ambiguity, NotFound when absent.
  common::Result<size_t> Resolve(std::string_view qualifier,
                                 std::string_view name) const;

 private:
  std::vector<BindingColumn> columns_;
};

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_ROW_SCHEMA_H_
