// Logical query plans: the binder/planner output and the tree the logical
// query signature (paper §4.2) is computed from.
#ifndef SQLCM_EXEC_LOGICAL_PLAN_H_
#define SQLCM_EXEC_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/row_schema.h"
#include "storage/table.h"

namespace sqlcm::exec {

enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// Parses an aggregate function name; NotFound when not an aggregate.
common::Result<AggFunc> ParseAggFunc(std::string_view name);

enum class LogicalOp : uint8_t {
  kGet,        // base table access
  kFilter,     // conjunctive selection
  kProject,    // scalar projection
  kJoin,       // inner join (conjunctive predicate)
  kAggregate,  // grouping + aggregation
  kSort,
  kLimit,
  kDistinct,  // duplicate elimination over full rows (SELECT DISTINCT)
  // DML roots (no operator children except Update/Delete's access info):
  kInsert,
  kUpdate,
  kDelete,
};

const char* LogicalOpName(LogicalOp op);

struct AggSpec {
  AggFunc func;
  bool star = false;                // COUNT(*)
  std::unique_ptr<BoundExpr> arg;   // null when star
  std::string output_name;
};

struct SortKey {
  std::unique_ptr<BoundExpr> expr;
  bool descending = false;
};

/// One node of a logical plan. Tagged union; only the fields relevant to
/// `op` are populated. The `output` schema describes rows this node yields.
struct LogicalPlan {
  LogicalOp op;
  RowSchema output;
  std::vector<std::unique_ptr<LogicalPlan>> children;

  // kGet / DML target
  storage::Table* table = nullptr;
  std::string alias;

  // kFilter / kJoin: conjunctive predicates (implicitly ANDed). For kJoin
  // they are bound against the concatenated (left, right) schema.
  std::vector<std::unique_ptr<BoundExpr>> predicates;

  // kProject
  std::vector<std::unique_ptr<BoundExpr>> project_exprs;
  std::vector<std::string> project_names;

  // kAggregate
  std::vector<std::unique_ptr<BoundExpr>> group_exprs;
  std::vector<AggSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  // kInsert: each inner vector is one row of constant expressions already
  // mapped to schema column order.
  std::vector<std::vector<std::unique_ptr<BoundExpr>>> insert_rows;

  // kUpdate: (column ordinal, value expression bound against table schema)
  std::vector<std::pair<size_t, std::unique_ptr<BoundExpr>>> assignments;

  // kUpdate / kDelete: predicate over the target table (may be empty).
  // Stored in `predicates`.

  /// Statement kind probe for Query.Query_Type (paper Appendix A).
  /// "SELECT" for query roots, else INSERT/UPDATE/DELETE.
  const char* StatementType() const;

  /// Canonical linearization used by the logical query signature: a
  /// pre-order rendering of operators and their arguments with conjunct
  /// lists sorted (the paper treats predicate order as insignificant) and
  /// constants wildcarded when `wildcard_constants` is set.
  void AppendSignature(bool wildcard_constants, std::string* out) const;
};

}  // namespace sqlcm::exec

#endif  // SQLCM_EXEC_LOGICAL_PLAN_H_
