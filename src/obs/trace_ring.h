// Bounded multi-producer event-trace ring for the monitor engine.
//
// Producers are session threads dispatching monitor events; they must never
// block, so the ring is lock-free: a ticket counter assigns slots and each
// slot carries a stamp encoding write progress (2*ticket+1 = write begun,
// 2*ticket+2 = write complete). Stamps only move forward (monotonic CAS), so
// a slow writer that lost its slot to a newer lap simply skips publication.
// Payload fields are individually-relaxed atomics rather than plain fields
// behind a seqlock — this keeps the protocol free of data races (TSan-clean)
// at the cost of a torn-but-detected read: Snapshot() re-checks the stamp
// and drops any slot that changed mid-read. On a ring lap it is possible for
// a slot to expose a mix of two *completed* writes' fields; snapshots are
// diagnostics, not audit logs, and the enclosing test tolerance reflects it.
#ifndef SQLCM_OBS_TRACE_RING_H_
#define SQLCM_OBS_TRACE_RING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sqlcm::obs {

struct TraceEvent {
  uint64_t seq = 0;           // global event index (0-based)
  int64_t ts_micros = 0;      // event timestamp
  uint8_t kind = 0;           // sqlcm::cm::EventKind, stored untyped
  std::string qualifier;      // truncated to kMaxQualifierBytes
  uint64_t qualifier_hash = 0;  // FNV-1a of the *full* qualifier
  uint32_t rules_fired = 0;   // rules whose actions ran for this event
  int64_t dispatch_micros = 0;  // wall time spent dispatching the event
};

class TraceRing {
 public:
  static constexpr size_t kMaxQualifierBytes = 24;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(size_t capacity = 1024);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// No-op when disabled. Lock-free, wait-free apart from the stamp CAS.
  void Record(uint8_t kind, std::string_view qualifier, uint32_t rules_fired,
              int64_t ts_micros, int64_t dispatch_micros);

  /// The most recent min(capacity, total recorded) events, oldest first.
  /// Slots mid-write or reclaimed by a concurrent lap are skipped.
  std::vector<TraceEvent> Snapshot() const;

  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Slots a Snapshot() had to discard because a concurrent writer touched
  /// them mid-read (torn) or still owned them (mid-write). Cumulative across
  /// all snapshots; surfaced in sqlcm_engine_stats so a reader can tell how
  /// lossy its view of a busy ring is.
  uint64_t snapshot_drops() const {
    return snapshot_drops_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> stamp{0};  // 0 = empty; odd = writing; even = done
    std::atomic<int64_t> ts_micros{0};
    std::atomic<int64_t> dispatch_micros{0};
    std::atomic<uint64_t> qualifier_hash{0};
    std::atomic<uint32_t> rules_fired{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint8_t> qualifier_len{0};
    std::array<std::atomic<uint64_t>, 3> qualifier_words{};
  };

  /// Advance `stamp` to `target` only if it is currently older; returns false
  /// when a newer ticket already owns the slot.
  static bool AdvanceStamp(std::atomic<uint64_t>& stamp, uint64_t target);

  size_t capacity_;       // power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};    // next ticket to hand out
  std::atomic<bool> enabled_{false};
  mutable std::atomic<uint64_t> snapshot_drops_{0};
};

}  // namespace sqlcm::obs

#endif  // SQLCM_OBS_TRACE_RING_H_
