// Bounded ring of recent error messages plus a lifetime total.
//
// Replaces MonitorEngine's single last-error string: operators get the last
// N failures with timestamps (surfaced through sqlcm_engine_stats) instead
// of only the most recent one. Errors are off the monitor's success fast
// path, so a mutex here is fine.
#ifndef SQLCM_OBS_ERROR_RING_H_
#define SQLCM_OBS_ERROR_RING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sqlcm::obs {

class ErrorRing {
 public:
  struct Entry {
    uint64_t seq = 0;       // 0-based index over all errors ever recorded
    int64_t ts_micros = 0;
    std::string message;
  };

  explicit ErrorRing(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  void Record(int64_t ts_micros, std::string message) {
    const uint64_t seq = total_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(Entry{seq, ts_micros, std::move(message)});
    while (entries_.size() > capacity_) {
      entries_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Oldest-first copy of the retained entries.
  std::vector<Entry> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<Entry>(entries_.begin(), entries_.end());
  }

  /// Message of the most recent error; empty when none recorded.
  std::string MostRecent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty() ? std::string() : entries_.back().message;
  }

  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  /// Entries evicted from the ring to respect `capacity_`; together with
  /// total() this tells an operator how much error history has been lost.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

}  // namespace sqlcm::obs

#endif  // SQLCM_OBS_ERROR_RING_H_
