#include "obs/trace_ring.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"

namespace sqlcm::obs {

TraceRing::TraceRing(size_t capacity) {
  if (capacity < 2) capacity = 2;
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

bool TraceRing::AdvanceStamp(std::atomic<uint64_t>& stamp, uint64_t target) {
  uint64_t cur = stamp.load(std::memory_order_acquire);
  while (cur < target) {
    if (stamp.compare_exchange_weak(cur, target, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void TraceRing::Record(uint8_t kind, std::string_view qualifier,
                       uint32_t rules_fired, int64_t ts_micros,
                       int64_t dispatch_micros) {
  if (!enabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];

  // Claim the slot; if a newer lap already owns it, drop this event.
  if (!AdvanceStamp(slot.stamp, 2 * ticket + 1)) return;

  slot.ts_micros.store(ts_micros, std::memory_order_relaxed);
  slot.dispatch_micros.store(dispatch_micros, std::memory_order_relaxed);
  slot.qualifier_hash.store(common::Fnv1a64(qualifier),
                            std::memory_order_relaxed);
  slot.rules_fired.store(rules_fired, std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);

  const size_t len = std::min(qualifier.size(), kMaxQualifierBytes);
  uint64_t words[3] = {0, 0, 0};
  if (len > 0) std::memcpy(words, qualifier.data(), len);
  for (size_t i = 0; i < 3; ++i) {
    slot.qualifier_words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.qualifier_len.store(static_cast<uint8_t>(len),
                           std::memory_order_relaxed);

  // Publish; if a newer writer raced past us the stamp is already ahead.
  AdvanceStamp(slot.stamp, 2 * ticket + 2);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t count = std::min<uint64_t>(head, capacity_);
  std::vector<TraceEvent> out;
  out.reserve(count);
  for (uint64_t ticket = head - count; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t expect = 2 * ticket + 2;
    if (slot.stamp.load(std::memory_order_acquire) != expect) {
      snapshot_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    TraceEvent ev;
    ev.seq = ticket;
    ev.ts_micros = slot.ts_micros.load(std::memory_order_relaxed);
    ev.dispatch_micros = slot.dispatch_micros.load(std::memory_order_relaxed);
    ev.qualifier_hash = slot.qualifier_hash.load(std::memory_order_relaxed);
    ev.rules_fired = slot.rules_fired.load(std::memory_order_relaxed);
    ev.kind = slot.kind.load(std::memory_order_relaxed);
    const size_t len = std::min<size_t>(
        slot.qualifier_len.load(std::memory_order_relaxed),
        kMaxQualifierBytes);
    uint64_t words[3];
    for (size_t i = 0; i < 3; ++i) {
      words[i] = slot.qualifier_words[i].load(std::memory_order_relaxed);
    }
    // Re-check: drop the slot if a concurrent writer touched it mid-read.
    // The acquire fence keeps the payload loads above from being delayed
    // past this stamp load.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_acquire) != expect) {
      snapshot_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ev.qualifier.assign(reinterpret_cast<const char*>(words), len);
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace sqlcm::obs
