// Causal span plane for the monitor engine: lock-free span ring plus a
// top-K slow-trace exemplar table.
//
// Every monitored event opens a root span whose trace id is the engine's
// global event sequence number; child spans wrap rule-condition evaluation,
// action execution, LAT upserts and checkpoint I/O. Nested FireEvent calls
// (LAT-eviction cascades) carry the parent span id, so a whole cascade
// reconstructs as a tree under one trace id. Spans are fixed-payload —
// strings are referenced by 64-bit FNV-1a hash (common::Fnv1a64) or rule id
// — so producers never allocate.
//
// SpanRing uses the same stamp-CAS MPSC protocol as TraceRing (see
// trace_ring.h for the full protocol commentary): ticket counter assigns
// slots, stamps move forward monotonically (2*ticket+1 = writing,
// 2*ticket+2 = done), payload fields are individually-relaxed atomics so the
// whole thing is TSan-clean, and Snapshot() re-checks the stamp and counts
// any torn/mid-write slot it has to drop.
//
// SlowTraceTable keeps the K most expensive traces *whole* (every span, not
// just the root) as exemplars; the reject fast path is a single relaxed
// atomic compare against the cheapest retained trace, so the common case —
// an unremarkable event — never takes the mutex.
#ifndef SQLCM_OBS_SPAN_RING_H_
#define SQLCM_OBS_SPAN_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sqlcm::obs {

/// What a span measures. Stored untyped (uint8_t) in ring slots.
enum class SpanKind : uint8_t {
  kEvent = 0,      // one FireEvent dispatch (root or cascaded)
  kCondition = 1,  // one rule's condition evaluation
  kAction = 2,     // one rule action's execution
  kLatUpsert = 3,  // LAT insert inside a Query.Insert action
  kCheckpoint = 4, // LAT snapshot write (checkpoint I/O)
  kShip = 5,       // federation delta export + spool publish (src/fed)
  kIngest = 6,     // federation delta ingest + merge (src/fed)
  kQueueWait = 7,  // deferred event's enqueue->drain latency (event_queue)
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t trace_id = 0;        // global event seq of the root event
  uint64_t span_id = 0;         // engine-wide unique, never 0
  uint64_t parent_id = 0;       // 0 = trace root
  uint64_t ref = 0;             // rule id (condition/action) or name hash
  int64_t start_nanos = 0;      // steady-clock, comparable within a process
  int64_t duration_nanos = 0;
  SpanKind kind = SpanKind::kEvent;
  uint8_t detail = 0;           // EventKind (kEvent) / ActionKind (kAction)
  uint8_t depth = 0;            // cascade depth of the enclosing event
};

class SpanRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpanRing(size_t capacity = 4096);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// No-op when disabled. Lock-free, wait-free apart from the stamp CAS.
  void Record(const Span& span);

  /// The most recent min(capacity, total recorded) spans, oldest first.
  /// Slots mid-write or reclaimed by a concurrent lap are skipped (and
  /// counted in snapshot_drops()).
  std::vector<Span> Snapshot() const;

  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t snapshot_drops() const {
    return snapshot_drops_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> stamp{0};  // 0 = empty; odd = writing; even = done
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> ref{0};
    std::atomic<int64_t> start_nanos{0};
    std::atomic<int64_t> duration_nanos{0};
    std::atomic<uint32_t> meta{0};  // kind | detail<<8 | depth<<16
  };

  static bool AdvanceStamp(std::atomic<uint64_t>& stamp, uint64_t target);

  size_t capacity_;  // power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // next ticket to hand out
  std::atomic<bool> enabled_{false};
  mutable std::atomic<uint64_t> snapshot_drops_{0};
};

/// Retains the K most expensive traces whole, spans and all, as exemplars
/// for sqlcm_slow_events. Offer() is called once per finished root trace.
class SlowTraceTable {
 public:
  struct Exemplar {
    uint64_t trace_id = 0;
    int64_t total_nanos = 0;
    std::vector<Span> spans;  // in emission order (parents before children)
  };

  explicit SlowTraceTable(size_t k = 8);

  /// Considers one finished trace. Cheap rejection: when the table is full
  /// and `total_nanos` does not beat the cheapest retained trace, this is a
  /// single relaxed load — no lock, no copy.
  void Offer(uint64_t trace_id, int64_t total_nanos,
             const std::vector<Span>& spans);

  /// Retained exemplars, most expensive first.
  std::vector<Exemplar> Snapshot() const;

  void Clear();

  size_t capacity() const { return k_; }
  uint64_t offers() const { return offers_.load(std::memory_order_relaxed); }
  uint64_t admits() const { return admits_.load(std::memory_order_relaxed); }

 private:
  const size_t k_;
  /// Cheapest retained total when full; -1 while the table has free space
  /// (so every offer is admitted until K traces are held).
  std::atomic<int64_t> floor_nanos_{-1};
  std::atomic<uint64_t> offers_{0};
  std::atomic<uint64_t> admits_{0};
  mutable std::mutex mutex_;
  std::vector<Exemplar> traces_;
};

}  // namespace sqlcm::obs

#endif  // SQLCM_OBS_SPAN_RING_H_
