#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace sqlcm::obs {

size_t LatencyHistogram::BucketIndex(int64_t micros) {
  if (micros <= 0) return 0;
  const size_t idx = std::bit_width(static_cast<uint64_t>(micros));
  return std::min(idx, kNumBuckets - 1);
}

int64_t LatencyHistogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return int64_t{1} << (i - 1);
}

int64_t LatencyHistogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << i) - 1;
}

void LatencyHistogram::Record(int64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (micros > 0) {
    sum_.fetch_add(static_cast<uint64_t>(micros), std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (micros > prev &&
           !max_.compare_exchange_weak(prev, micros,
                                       std::memory_order_relaxed)) {
    }
  }
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;

  const double rank = std::max(1.0, std::ceil(p * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cumulative + counts[i]) < rank) {
      cumulative += counts[i];
      continue;
    }
    const double lo = static_cast<double>(BucketLowerBound(i));
    // Clamp the bucket ceiling to the largest sample actually observed so a
    // single-valued distribution does not report the bucket's upper edge.
    double hi = static_cast<double>(BucketUpperBound(i));
    const double observed_max =
        static_cast<double>(max_.load(std::memory_order_relaxed));
    if (observed_max >= lo) hi = std::min(hi, observed_max);
    if (hi < lo) hi = lo;
    const double frac =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

LatencyHistogram::Percentiles LatencyHistogram::ComputePercentiles() const {
  return Percentiles{Percentile(0.50), Percentile(0.95), Percentile(0.99)};
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::RegisterCounter(std::string name, const Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry e;
  e.name = std::move(name);
  e.counter = counter;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::RegisterGauge(std::string name, const Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry e;
  e.name = std::move(name);
  e.gauge = gauge;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::RegisterHistogram(std::string name,
                                        const LatencyHistogram* histogram) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry e;
  e.name = std::move(name);
  e.histogram = histogram;
  entries_.push_back(std::move(e));
}

std::string PrometheusMetricName(std::string_view name,
                                 std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string MetricsRegistry::DumpPrometheus(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(entries_.size() * 128);
  for (const Entry& e : entries_) {
    const std::string help = PrometheusEscapeHelp(e.name);
    if (e.counter != nullptr) {
      const std::string name = PrometheusMetricName(e.name, prefix) + "_total";
      out += "# HELP " + name + " " + help + "\n";
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge != nullptr) {
      const std::string name = PrometheusMetricName(e.name, prefix);
      out += "# HELP " + name + " " + help + "\n";
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + std::to_string(e.gauge->value()) + "\n";
    } else if (e.histogram != nullptr) {
      const std::string name = PrometheusMetricName(e.name, prefix);
      out += "# HELP " + name + " " + help + " (microseconds)\n";
      out += "# TYPE " + name + " histogram\n";
      // One read of the bucket array feeds both the cumulative series and
      // the +Inf/_count samples, so `le="+Inf"` always equals `_count` and
      // the series is monotone regardless of concurrent Record() calls.
      uint64_t cumulative = 0;
      for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        cumulative += e.histogram->bucket_count(i);
        const int64_t upper = LatencyHistogram::BucketUpperBound(i);
        const std::string le = (i + 1 == LatencyHistogram::kNumBuckets)
                                   ? "+Inf"
                                   : std::to_string(upper);
        out += name + "_bucket{le=\"" + le + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum " + std::to_string(e.histogram->sum_micros()) + "\n";
      out += name + "_count " + std::to_string(cumulative) + "\n";
    }
  }
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(entries_.size() * 2);
  for (const Entry& e : entries_) {
    if (e.counter != nullptr) {
      out.push_back({e.name, "counter",
                     static_cast<double>(e.counter->value())});
    } else if (e.gauge != nullptr) {
      out.push_back({e.name, "gauge", static_cast<double>(e.gauge->value())});
    } else if (e.histogram != nullptr) {
      const auto pct = e.histogram->ComputePercentiles();
      out.push_back({e.name + ".count", "histogram",
                     static_cast<double>(e.histogram->count())});
      out.push_back({e.name + ".p50_us", "histogram", pct.p50});
      out.push_back({e.name + ".p95_us", "histogram", pct.p95});
      out.push_back({e.name + ".p99_us", "histogram", pct.p99});
      out.push_back({e.name + ".max_us", "histogram",
                     static_cast<double>(e.histogram->max_micros())});
    }
  }
  return out;
}

}  // namespace sqlcm::obs
