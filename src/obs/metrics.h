// Self-monitoring primitives (observability layer).
//
// SQLCM's central claim is low in-server monitoring overhead (paper §2.1,
// §6); this module gives the reproduction the instruments to measure that
// claim about itself. Everything on the update path is lock-free:
//   * Counter / Gauge — single relaxed atomics;
//   * LatencyHistogram — fixed power-of-two buckets with p50/p95/p99
//     extraction, a handful of relaxed atomic ops per Record().
// A MetricsRegistry holds non-owning named references so the whole
// inventory can be materialized into the sqlcm_engine_stats system view
// (R-GMA's "monitoring data is itself relational data" move, PAPERS.md).
//
// Threading: Record/Inc/Set are safe from any thread. Snapshot/percentile
// reads are lock-free too and see a near-consistent view (counts may lag
// sums by in-flight updates); registry registration is mutex-guarded and
// expected at setup time only.
#ifndef SQLCM_OBS_METRICS_H_
#define SQLCM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sqlcm::obs {

/// Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, row counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram over non-negative microsecond samples.
///
/// Bucket i (i >= 1) covers [2^(i-1), 2^i - 1] µs; bucket 0 holds samples
/// <= 0. Record() is a few relaxed atomic ops (bucket, count, sum, max) —
/// cheap enough for monitor hot paths. Percentiles interpolate linearly
/// inside the selected bucket, with the top bound clamped to the maximum
/// sample seen, so single-valued distributions report tight estimates.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 34;  // covers up to ~2.4 hours in µs

  void Record(int64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max_micros() const { return max_.load(std::memory_order_relaxed); }

  /// p in [0, 1]; 0 when the histogram is empty.
  double Percentile(double p) const;

  struct Percentiles {
    double p50 = 0, p95 = 0, p99 = 0;
  };
  Percentiles ComputePercentiles() const;

  /// Inclusive value range of bucket `i` (exposed for the percentile tests).
  static int64_t BucketLowerBound(size_t i);
  static int64_t BucketUpperBound(size_t i);

  /// Raw per-bucket count (exposition needs the buckets themselves, not
  /// just percentiles).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Not atomic with respect to concurrent Record(); benches only.
  void Reset();

 private:
  static size_t BucketIndex(int64_t micros);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Named, non-owning directory of metrics for view materialization.
/// Registered instruments must outlive the registry.
class MetricsRegistry {
 public:
  void RegisterCounter(std::string name, const Counter* counter);
  void RegisterGauge(std::string name, const Gauge* gauge);
  void RegisterHistogram(std::string name, const LatencyHistogram* histogram);

  struct Sample {
    std::string name;
    const char* kind;  // "counter" | "gauge" | "histogram"
    double value;
  };

  /// One sample per counter/gauge; histograms expand to
  /// <name>.count/.p50_us/.p95_us/.p99_us/.max_us.
  std::vector<Sample> Snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of the whole inventory.
  /// Counters get a `_total` suffix, histograms emit cumulative
  /// `_bucket{le="..."}` series (upper bounds from BucketUpperBound, in µs)
  /// plus `_sum`/`_count`. Registered names are sanitized with
  /// PrometheusMetricName under `prefix`. The `+Inf` bucket and `_count`
  /// are both derived from one read of the bucket array, so the series is
  /// internally consistent even against concurrent writers.
  std::string DumpPrometheus(std::string_view prefix = "sqlcm_") const;

 private:
  struct Entry {
    std::string name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// `prefix` + `name` with every character outside [a-zA-Z0-9_:] replaced by
/// '_' (registry names use '.' separators, which Prometheus forbids).
std::string PrometheusMetricName(std::string_view name,
                                 std::string_view prefix = "sqlcm_");

/// Escapes a HELP-line value: backslash -> `\\`, newline -> `\n`.
std::string PrometheusEscapeHelp(std::string_view text);

}  // namespace sqlcm::obs

#endif  // SQLCM_OBS_METRICS_H_
