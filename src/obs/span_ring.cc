#include "obs/span_ring.h"

#include <algorithm>
#include <bit>

namespace sqlcm::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEvent:
      return "event";
    case SpanKind::kCondition:
      return "condition";
    case SpanKind::kAction:
      return "action";
    case SpanKind::kLatUpsert:
      return "lat_upsert";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kShip:
      return "ship";
    case SpanKind::kIngest:
      return "ingest";
    case SpanKind::kQueueWait:
      return "queue_wait";
  }
  return "unknown";
}

SpanRing::SpanRing(size_t capacity) {
  if (capacity < 2) capacity = 2;
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

bool SpanRing::AdvanceStamp(std::atomic<uint64_t>& stamp, uint64_t target) {
  uint64_t cur = stamp.load(std::memory_order_acquire);
  while (cur < target) {
    if (stamp.compare_exchange_weak(cur, target, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void SpanRing::Record(const Span& span) {
  if (!enabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];

  // Claim the slot; if a newer lap already owns it, drop this span.
  if (!AdvanceStamp(slot.stamp, 2 * ticket + 1)) return;

  slot.trace_id.store(span.trace_id, std::memory_order_relaxed);
  slot.span_id.store(span.span_id, std::memory_order_relaxed);
  slot.parent_id.store(span.parent_id, std::memory_order_relaxed);
  slot.ref.store(span.ref, std::memory_order_relaxed);
  slot.start_nanos.store(span.start_nanos, std::memory_order_relaxed);
  slot.duration_nanos.store(span.duration_nanos, std::memory_order_relaxed);
  const uint32_t meta = static_cast<uint32_t>(span.kind) |
                        (static_cast<uint32_t>(span.detail) << 8) |
                        (static_cast<uint32_t>(span.depth) << 16);
  slot.meta.store(meta, std::memory_order_relaxed);

  // Publish; if a newer writer raced past us the stamp is already ahead.
  AdvanceStamp(slot.stamp, 2 * ticket + 2);
}

std::vector<Span> SpanRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t count = std::min<uint64_t>(head, capacity_);
  std::vector<Span> out;
  out.reserve(count);
  for (uint64_t ticket = head - count; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t expect = 2 * ticket + 2;
    if (slot.stamp.load(std::memory_order_acquire) != expect) {
      snapshot_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    Span span;
    span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    span.span_id = slot.span_id.load(std::memory_order_relaxed);
    span.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    span.ref = slot.ref.load(std::memory_order_relaxed);
    span.start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
    span.duration_nanos = slot.duration_nanos.load(std::memory_order_relaxed);
    const uint32_t meta = slot.meta.load(std::memory_order_relaxed);
    // Re-check: drop the slot if a concurrent writer touched it mid-read.
    // The acquire fence keeps the payload loads above from being delayed
    // past this stamp load.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_acquire) != expect) {
      snapshot_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    span.kind = static_cast<SpanKind>(meta & 0xff);
    span.detail = static_cast<uint8_t>((meta >> 8) & 0xff);
    span.depth = static_cast<uint8_t>((meta >> 16) & 0xff);
    out.push_back(span);
  }
  return out;
}

SlowTraceTable::SlowTraceTable(size_t k) : k_(k ? k : 1) {}

void SlowTraceTable::Offer(uint64_t trace_id, int64_t total_nanos,
                           const std::vector<Span>& spans) {
  offers_.fetch_add(1, std::memory_order_relaxed);
  const int64_t floor = floor_nanos_.load(std::memory_order_relaxed);
  if (floor >= 0 && total_nanos <= floor) return;

  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: the floor may have moved past this trace while
  // we were acquiring.
  if (traces_.size() >= k_) {
    auto cheapest = std::min_element(
        traces_.begin(), traces_.end(),
        [](const Exemplar& a, const Exemplar& b) {
          return a.total_nanos < b.total_nanos;
        });
    if (total_nanos <= cheapest->total_nanos) return;
    traces_.erase(cheapest);
  }
  Exemplar ex;
  ex.trace_id = trace_id;
  ex.total_nanos = total_nanos;
  ex.spans = spans;
  traces_.push_back(std::move(ex));
  admits_.fetch_add(1, std::memory_order_relaxed);
  if (traces_.size() >= k_) {
    int64_t new_floor = traces_.front().total_nanos;
    for (const Exemplar& t : traces_) {
      new_floor = std::min(new_floor, t.total_nanos);
    }
    floor_nanos_.store(new_floor, std::memory_order_relaxed);
  }
}

std::vector<SlowTraceTable::Exemplar> SlowTraceTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Exemplar> out = traces_;
  std::sort(out.begin(), out.end(), [](const Exemplar& a, const Exemplar& b) {
    return a.total_nanos > b.total_nanos;
  });
  return out;
}

void SlowTraceTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  floor_nanos_.store(-1, std::memory_order_relaxed);
}

}  // namespace sqlcm::obs
