// In-memory B+-tree keyed by composite SQL values.
//
// Backs every clustered and secondary index in the engine. Keys are
// common::Row compared lexicographically with Value::Compare; payloads are
// a template parameter (the full row for clustered indexes, the primary key
// for secondary indexes).
//
// Duplicate keys are rejected (secondary indexes append the primary key to
// the key to make entries unique). Leaves are doubly linked for ordered
// range scans. Deletion rebalances (borrow-then-merge), so the tree stays
// within the usual occupancy bounds; tests/storage_bplus_tree_test.cc
// cross-checks against std::map under random workloads.
//
// Thread-compatibility: the tree itself is not synchronized; Table guards
// each tree with a shared_mutex, and transactional isolation is provided a
// level up by the 2PL lock manager.
#ifndef SQLCM_STORAGE_BPLUS_TREE_H_
#define SQLCM_STORAGE_BPLUS_TREE_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/value.h"

namespace sqlcm::storage {

/// Lexicographic three-way comparison of composite keys. A shorter key that
/// is a prefix of a longer one compares less (enables prefix scans).
inline int CompareKeys(const common::Row& a, const common::Row& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

template <typename V>
class BPlusTree {
 public:
  /// Maximum keys per node; nodes split when exceeding this and rebalance
  /// below kMinKeys. 32 keeps nodes around one cache page for typical keys.
  static constexpr size_t kMaxKeys = 32;
  static constexpr size_t kMinKeys = kMaxKeys / 2;

  using Key = common::Row;

  BPlusTree() { root_ = NewLeaf(); }
  ~BPlusTree() { FreeNode(root_); }
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts; returns false (and leaves the tree unchanged) on duplicate.
  bool Insert(const Key& key, V value) {
    SplitResult split;
    if (!InsertRec(root_, key, std::move(value), &split)) return false;
    if (split.new_node != nullptr) {
      Internal* new_root = NewInternal();
      new_root->keys.push_back(std::move(split.separator));
      new_root->children.push_back(root_);
      new_root->children.push_back(split.new_node);
      root_ = new_root;
    }
    ++size_;
    return true;
  }

  /// Returns the payload for `key` or nullptr.
  V* Find(const Key& key) {
    Leaf* leaf = DescendToLeaf(key);
    const size_t i = LowerBoundIndex(leaf->keys, key);
    if (i < leaf->keys.size() && CompareKeys(leaf->keys[i], key) == 0) {
      return &leaf->values[i];
    }
    return nullptr;
  }
  const V* Find(const Key& key) const {
    return const_cast<BPlusTree*>(this)->Find(key);
  }

  /// Removes `key`; returns false if absent.
  bool Erase(const Key& key) {
    if (!EraseRec(root_, key)) return false;
    // Shrink the root when an internal root has a single child.
    if (!root_->leaf) {
      Internal* r = static_cast<Internal*>(root_);
      if (r->children.size() == 1) {
        root_ = r->children[0];
        r->children.clear();
        delete r;
      }
    }
    --size_;
    return true;
  }

  /// Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    Iterator() = default;
    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const { return leaf_->keys[idx_]; }
    V& value() const { return leaf_->values[idx_]; }
    void Next() {
      if (++idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }

   private:
    friend class BPlusTree;
    Iterator(typename BPlusTree::Leaf* leaf, size_t idx)
        : leaf_(leaf), idx_(idx) {}
    typename BPlusTree::Leaf* leaf_ = nullptr;
    size_t idx_ = 0;
  };

  Iterator Begin() {
    Node* n = root_;
    while (!n->leaf) n = static_cast<Internal*>(n)->children.front();
    Leaf* leaf = static_cast<Leaf*>(n);
    if (leaf->keys.empty()) return Iterator();
    return Iterator(leaf, 0);
  }

  /// First entry with key >= `key`.
  Iterator LowerBound(const Key& key) {
    Leaf* leaf = DescendToLeaf(key);
    size_t i = LowerBoundIndex(leaf->keys, key);
    if (i >= leaf->keys.size()) {
      leaf = leaf->next;
      i = 0;
      if (leaf == nullptr || leaf->keys.empty()) return Iterator();
    }
    return Iterator(leaf, i);
  }

  /// Depth of the tree (1 = just a leaf); exercised by structural tests.
  size_t Depth() const {
    size_t d = 1;
    const Node* n = root_;
    while (!n->leaf) {
      n = static_cast<const Internal*>(n)->children.front();
      ++d;
    }
    return d;
  }

  /// Validates occupancy/order invariants; returns false on corruption.
  /// Test-only helper (O(n)).
  bool CheckInvariants() const {
    size_t counted = 0;
    bool ok = CheckNode(root_, /*is_root=*/true, nullptr, nullptr, &counted);
    return ok && counted == size_;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    virtual ~Node() = default;
    const bool leaf;
    std::vector<Key> keys;
  };
  struct Internal final : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; subtree i holds keys < keys[i],
    // subtree i+1 holds keys >= keys[i].
    std::vector<Node*> children;
    ~Internal() override = default;
  };
  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<V> values;
    Leaf* prev = nullptr;
    Leaf* next = nullptr;
    ~Leaf() override = default;
  };

  struct SplitResult {
    Key separator;
    Node* new_node = nullptr;
  };

  static Leaf* NewLeaf() { return new Leaf(); }
  static Internal* NewInternal() { return new Internal(); }

  static void FreeNode(Node* n) {
    if (!n->leaf) {
      for (Node* c : static_cast<Internal*>(n)->children) FreeNode(c);
    }
    delete n;
  }

  static size_t LowerBoundIndex(const std::vector<Key>& keys, const Key& key) {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompareKeys(keys[mid], key) < 0) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }

  /// Child index to descend into for `key`: first separator > key ... we use
  /// convention: go right on equality (subtree i+1 holds keys >= keys[i]).
  static size_t ChildIndex(const Internal* n, const Key& key) {
    size_t lo = 0, hi = n->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompareKeys(n->keys[mid], key) <= 0) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }

  Leaf* DescendToLeaf(const Key& key) const {
    Node* n = root_;
    while (!n->leaf) {
      Internal* in = static_cast<Internal*>(n);
      n = in->children[ChildIndex(in, key)];
    }
    return static_cast<Leaf*>(n);
  }

  // Returns false on duplicate key. On success, *split describes a new right
  // sibling if this node overflowed.
  bool InsertRec(Node* node, const Key& key, V value, SplitResult* split) {
    split->new_node = nullptr;
    if (node->leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const size_t i = LowerBoundIndex(leaf->keys, key);
      if (i < leaf->keys.size() && CompareKeys(leaf->keys[i], key) == 0) {
        return false;
      }
      leaf->keys.insert(leaf->keys.begin() + i, key);
      leaf->values.insert(leaf->values.begin() + i, std::move(value));
      if (leaf->keys.size() > kMaxKeys) SplitLeaf(leaf, split);
      return true;
    }
    Internal* in = static_cast<Internal*>(node);
    const size_t ci = ChildIndex(in, key);
    SplitResult child_split;
    if (!InsertRec(in->children[ci], key, std::move(value), &child_split)) {
      return false;
    }
    if (child_split.new_node != nullptr) {
      in->keys.insert(in->keys.begin() + ci, std::move(child_split.separator));
      in->children.insert(in->children.begin() + ci + 1, child_split.new_node);
      if (in->keys.size() > kMaxKeys) SplitInternal(in, split);
    }
    return true;
  }

  void SplitLeaf(Leaf* leaf, SplitResult* split) {
    Leaf* right = NewLeaf();
    const size_t mid = leaf->keys.size() / 2;
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                       std::make_move_iterator(leaf->keys.end()));
    right->values.assign(std::make_move_iterator(leaf->values.begin() + mid),
                         std::make_move_iterator(leaf->values.end()));
    leaf->keys.resize(mid);
    leaf->values.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right;
    leaf->next = right;
    split->separator = right->keys.front();
    split->new_node = right;
  }

  void SplitInternal(Internal* node, SplitResult* split) {
    Internal* right = NewInternal();
    const size_t mid = node->keys.size() / 2;
    // keys[mid] moves up as the separator; [mid+1, end) go right.
    split->separator = std::move(node->keys[mid]);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(node->children.begin() + mid + 1,
                           node->children.end());
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    split->new_node = right;
  }

  // Returns true if the key was found and erased. Rebalances children that
  // underflow.
  bool EraseRec(Node* node, const Key& key) {
    if (node->leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      const size_t i = LowerBoundIndex(leaf->keys, key);
      if (i >= leaf->keys.size() || CompareKeys(leaf->keys[i], key) != 0) {
        return false;
      }
      leaf->keys.erase(leaf->keys.begin() + i);
      leaf->values.erase(leaf->values.begin() + i);
      return true;
    }
    Internal* in = static_cast<Internal*>(node);
    const size_t ci = ChildIndex(in, key);
    if (!EraseRec(in->children[ci], key)) return false;
    if (NodeKeyCount(in->children[ci]) < kMinKeys) Rebalance(in, ci);
    return true;
  }

  static size_t NodeKeyCount(const Node* n) { return n->keys.size(); }

  /// Fixes up child `ci` of `parent` after underflow: borrow from a sibling
  /// if it has spare keys, otherwise merge with a sibling.
  void Rebalance(Internal* parent, size_t ci) {
    Node* child = parent->children[ci];
    Node* left = ci > 0 ? parent->children[ci - 1] : nullptr;
    Node* right =
        ci + 1 < parent->children.size() ? parent->children[ci + 1] : nullptr;

    if (left != nullptr && left->keys.size() > kMinKeys) {
      BorrowFromLeft(parent, ci, left, child);
      return;
    }
    if (right != nullptr && right->keys.size() > kMinKeys) {
      BorrowFromRight(parent, ci, child, right);
      return;
    }
    if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, ci);
    }
    // else: child is the only child (root case handled by caller).
  }

  void BorrowFromLeft(Internal* parent, size_t ci, Node* left, Node* child) {
    if (child->leaf) {
      Leaf* l = static_cast<Leaf*>(left);
      Leaf* c = static_cast<Leaf*>(child);
      c->keys.insert(c->keys.begin(), std::move(l->keys.back()));
      c->values.insert(c->values.begin(), std::move(l->values.back()));
      l->keys.pop_back();
      l->values.pop_back();
      parent->keys[ci - 1] = c->keys.front();
    } else {
      Internal* l = static_cast<Internal*>(left);
      Internal* c = static_cast<Internal*>(child);
      // Rotate through the parent separator.
      c->keys.insert(c->keys.begin(), std::move(parent->keys[ci - 1]));
      parent->keys[ci - 1] = std::move(l->keys.back());
      l->keys.pop_back();
      c->children.insert(c->children.begin(), l->children.back());
      l->children.pop_back();
    }
  }

  void BorrowFromRight(Internal* parent, size_t ci, Node* child, Node* right) {
    if (child->leaf) {
      Leaf* c = static_cast<Leaf*>(child);
      Leaf* r = static_cast<Leaf*>(right);
      c->keys.push_back(std::move(r->keys.front()));
      c->values.push_back(std::move(r->values.front()));
      r->keys.erase(r->keys.begin());
      r->values.erase(r->values.begin());
      parent->keys[ci] = r->keys.front();
    } else {
      Internal* c = static_cast<Internal*>(child);
      Internal* r = static_cast<Internal*>(right);
      c->keys.push_back(std::move(parent->keys[ci]));
      parent->keys[ci] = std::move(r->keys.front());
      r->keys.erase(r->keys.begin());
      c->children.push_back(r->children.front());
      r->children.erase(r->children.begin());
    }
  }

  /// Merges children `i` and `i+1` of `parent` into child `i`.
  void MergeChildren(Internal* parent, size_t i) {
    Node* left = parent->children[i];
    Node* right = parent->children[i + 1];
    if (left->leaf) {
      Leaf* l = static_cast<Leaf*>(left);
      Leaf* r = static_cast<Leaf*>(right);
      for (size_t k = 0; k < r->keys.size(); ++k) {
        l->keys.push_back(std::move(r->keys[k]));
        l->values.push_back(std::move(r->values[k]));
      }
      l->next = r->next;
      if (r->next != nullptr) r->next->prev = l;
      delete r;
    } else {
      Internal* l = static_cast<Internal*>(left);
      Internal* r = static_cast<Internal*>(right);
      l->keys.push_back(std::move(parent->keys[i]));
      for (auto& k : r->keys) l->keys.push_back(std::move(k));
      for (Node* c : r->children) l->children.push_back(c);
      r->children.clear();
      delete r;
    }
    parent->keys.erase(parent->keys.begin() + i);
    parent->children.erase(parent->children.begin() + i + 1);
  }

  bool CheckNode(const Node* n, bool is_root, const Key* lo, const Key* hi,
                 size_t* counted) const {
    if (!is_root && n->keys.size() < kMinKeys) return false;
    // Keys sorted and within (lo, hi].
    for (size_t i = 0; i + 1 < n->keys.size(); ++i) {
      if (CompareKeys(n->keys[i], n->keys[i + 1]) >= 0) return false;
    }
    if (!n->keys.empty()) {
      if (lo != nullptr && CompareKeys(n->keys.front(), *lo) < 0) return false;
      if (hi != nullptr && CompareKeys(n->keys.back(), *hi) >= 0) return false;
    }
    if (n->leaf) {
      *counted += n->keys.size();
      return static_cast<const Leaf*>(n)->keys.size() ==
             static_cast<const Leaf*>(n)->values.size();
    }
    const Internal* in = static_cast<const Internal*>(n);
    if (in->children.size() != in->keys.size() + 1) return false;
    for (size_t i = 0; i < in->children.size(); ++i) {
      const Key* child_lo = i == 0 ? lo : &in->keys[i - 1];
      const Key* child_hi = i == in->keys.size() ? hi : &in->keys[i];
      if (!CheckNode(in->children[i], false, child_lo, child_hi, counted)) {
        return false;
      }
    }
    return true;
  }

  Node* root_;
  size_t size_ = 0;
};

}  // namespace sqlcm::storage

#endif  // SQLCM_STORAGE_BPLUS_TREE_H_
