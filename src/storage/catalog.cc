#include "storage/catalog.h"

#include <mutex>

#include "common/string_util.h"

namespace sqlcm::storage {

using common::Result;
using common::Status;

Result<Table*> Catalog::CreateTable(catalog::TableSchema schema) {
  const std::string key = common::ToLower(schema.table_name());
  std::unique_lock lock(mutex_);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + schema.table_name() +
                                 "' already exists");
  }
  const uint32_t id = next_table_id_++;
  auto table = std::make_unique<Table>(id, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  by_id_.emplace(id, raw);
  return raw;
}

Status Catalog::DropTable(std::string_view name) {
  const std::string key = common::ToLower(name);
  std::unique_lock lock(mutex_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' not found");
  }
  by_id_.erase(it->second->table_id());
  tables_.erase(it);
  return Status::OK();
}

Table* Catalog::GetTable(std::string_view name) const {
  const std::string key = common::ToLower(name);
  std::shared_lock lock(mutex_);
  auto it = tables_.find(key);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Catalog::GetTableById(uint32_t table_id) const {
  std::shared_lock lock(mutex_);
  auto it = by_id_.find(table_id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [_, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace sqlcm::storage
