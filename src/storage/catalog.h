// Name → Table directory for one database instance.
#ifndef SQLCM_STORAGE_CATALOG_H_
#define SQLCM_STORAGE_CATALOG_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/table.h"

namespace sqlcm::storage {

/// Thread-safe directory of tables. Table pointers stay valid until
/// DropTable; callers must not hold them across a drop (the engine drops
/// tables only through an exclusive schema lock).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; AlreadyExists if the (case-insensitive) name is taken.
  common::Result<Table*> CreateTable(catalog::TableSchema schema);

  common::Status DropTable(std::string_view name);

  /// nullptr if absent.
  Table* GetTable(std::string_view name) const;

  /// Table by stable id; nullptr if absent.
  Table* GetTableById(uint32_t table_id) const;

  std::vector<std::string> TableNames() const;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;  // lower-cased name
  std::unordered_map<uint32_t, Table*> by_id_;
  uint32_t next_table_id_ = 1;
};

}  // namespace sqlcm::storage

#endif  // SQLCM_STORAGE_CATALOG_H_
