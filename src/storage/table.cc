#include "storage/table.h"

#include <mutex>

#include "common/string_util.h"

namespace sqlcm::storage {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

Table::Table(uint32_t table_id, catalog::TableSchema schema)
    : table_id_(table_id), schema_(std::move(schema)) {}

Row Table::MakeSecondaryKey(const Secondary& sec, const Row& row,
                            const Row& pk) const {
  Row key;
  key.reserve(sec.info.columns.size() + pk.size());
  for (size_t col : sec.info.columns) key.push_back(row[col]);
  for (const Value& v : pk) key.push_back(v);
  return key;
}

Result<Row> Table::Insert(Row row) {
  SQLCM_ASSIGN_OR_RETURN(row, schema_.ValidateRow(std::move(row)));
  Row key;
  if (uses_implicit_rowid()) {
    key.push_back(
        Value::Int(next_rowid_.fetch_add(1, std::memory_order_relaxed)));
  } else {
    key = schema_.KeyOf(row);
    for (const Value& v : key) {
      if (v.is_null()) {
        return Status::InvalidArgument("NULL in primary key of table '" +
                                       name() + "'");
      }
    }
  }
  std::unique_lock lock(latch_);
  SQLCM_RETURN_IF_ERROR(InsertLocked(key, std::move(row)));
  return key;
}

Status Table::InsertWithKey(const Row& key, Row row) {
  SQLCM_ASSIGN_OR_RETURN(row, schema_.ValidateRow(std::move(row)));
  std::unique_lock lock(latch_);
  if (uses_implicit_rowid() && key.size() == 1 && key[0].is_int()) {
    // Keep the rowid counter ahead of explicitly supplied keys.
    int64_t next = next_rowid_.load(std::memory_order_relaxed);
    if (key[0].int_value() >= next) {
      next_rowid_.store(key[0].int_value() + 1, std::memory_order_relaxed);
    }
  }
  return InsertLocked(key, std::move(row));
}

Status Table::InsertLocked(const Row& key, Row row) {
  Row row_copy = row;  // row moves into the tree; copy for index maintenance
  if (!primary_.Insert(key, std::move(row))) {
    std::string key_text;
    for (const Value& v : key) {
      if (!key_text.empty()) key_text += ", ";
      key_text += v.ToString();
    }
    return Status::AlreadyExists("duplicate primary key (" + key_text +
                                 ") in table '" + name() + "'");
  }
  for (Secondary& sec : secondaries_) {
    sec.tree->Insert(MakeSecondaryKey(sec, row_copy, key), key);
  }
  row_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<Row> Table::Delete(const Row& key) {
  std::unique_lock lock(latch_);
  return DeleteLocked(key);
}

Result<Row> Table::DeleteLocked(const Row& key) {
  Row* stored = primary_.Find(key);
  if (stored == nullptr) {
    return Status::NotFound("key not found in table '" + name() + "'");
  }
  Row old_row = *stored;
  primary_.Erase(key);
  for (Secondary& sec : secondaries_) {
    sec.tree->Erase(MakeSecondaryKey(sec, old_row, key));
  }
  row_count_.fetch_sub(1, std::memory_order_relaxed);
  return old_row;
}

Result<Row> Table::Update(const Row& key, Row new_row) {
  SQLCM_ASSIGN_OR_RETURN(new_row, schema_.ValidateRow(std::move(new_row)));
  if (!uses_implicit_rowid()) {
    const Row new_key = schema_.KeyOf(new_row);
    if (CompareKeys(new_key, key) != 0) {
      return Status::InvalidArgument(
          "Update may not change the primary key; use Delete+Insert");
    }
  }
  std::unique_lock lock(latch_);
  Row* stored = primary_.Find(key);
  if (stored == nullptr) {
    return Status::NotFound("key not found in table '" + name() + "'");
  }
  Row old_row = *stored;
  for (Secondary& sec : secondaries_) {
    const Row old_sk = MakeSecondaryKey(sec, old_row, key);
    const Row new_sk = MakeSecondaryKey(sec, new_row, key);
    if (CompareKeys(old_sk, new_sk) != 0) {
      sec.tree->Erase(old_sk);
      sec.tree->Insert(new_sk, key);
    }
  }
  *stored = std::move(new_row);
  return old_row;
}

std::optional<Row> Table::Get(const Row& key) const {
  std::shared_lock lock(latch_);
  const Row* stored = primary_.Find(key);
  if (stored == nullptr) return std::nullopt;
  return *stored;
}

void Table::SetVirtualRefresh(std::function<void()> refresh) {
  refresh_ = std::move(refresh);
  is_virtual_.store(true, std::memory_order_release);
}

void Table::MaybeRefresh() const {
  // Refresh runs before the table latch is taken: the callback repopulates
  // the table through the normal mutation API (which takes the latch
  // itself), so no latch is ever held across it.
  if (!is_virtual()) return;
  refresh_();
}

size_t Table::ScanBatch(const std::optional<Row>& after, size_t limit,
                        std::vector<Row>* keys_out,
                        std::vector<Row>* rows_out) const {
  // Only the first batch of a scan refreshes; resumed batches (after set)
  // read the snapshot built at scan start, keeping pagination stable.
  if (!after.has_value()) MaybeRefresh();
  std::shared_lock lock(latch_);
  auto& primary = const_cast<BPlusTree<Row>&>(primary_);
  auto it = after.has_value() ? primary.LowerBound(*after) : primary.Begin();
  // LowerBound is inclusive; skip the resume key itself.
  if (after.has_value() && it.Valid() && CompareKeys(it.key(), *after) == 0) {
    it.Next();
  }
  size_t copied = 0;
  while (it.Valid() && copied < limit) {
    keys_out->push_back(it.key());
    rows_out->push_back(it.value());
    it.Next();
    ++copied;
  }
  return copied;
}

Status Table::IndexPrefixLookup(std::string_view index_name, const Row& prefix,
                                std::vector<Row>* keys_out,
                                std::vector<Row>* rows_out) const {
  MaybeRefresh();
  std::shared_lock lock(latch_);
  auto prefix_matches = [&prefix](const Row& key) {
    if (key.size() < prefix.size()) return false;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (key[i] != prefix[i]) return false;
    }
    return true;
  };
  if (index_name.empty()) {
    auto& primary = const_cast<BPlusTree<Row>&>(primary_);
    for (auto it = primary.LowerBound(prefix);
         it.Valid() && prefix_matches(it.key()); it.Next()) {
      keys_out->push_back(it.key());
      rows_out->push_back(it.value());
    }
    return Status::OK();
  }
  for (const Secondary& sec : secondaries_) {
    if (!common::EqualsIgnoreCase(sec.info.name, index_name)) continue;
    auto& primary = const_cast<BPlusTree<Row>&>(primary_);
    for (auto it = sec.tree->LowerBound(prefix);
         it.Valid() && prefix_matches(it.key()); it.Next()) {
      const Row& pk = it.value();
      const Row* row = primary.Find(pk);
      if (row != nullptr) {
        keys_out->push_back(pk);
        rows_out->push_back(*row);
      }
    }
    return Status::OK();
  }
  return Status::NotFound("index '" + std::string(index_name) +
                          "' not found on table '" + name() + "'");
}

Status Table::IndexRangeLookup(std::string_view index_name,
                               const std::optional<Value>& lo,
                               const std::optional<Value>& hi,
                               std::vector<Row>* keys_out,
                               std::vector<Row>* rows_out) const {
  MaybeRefresh();
  std::shared_lock lock(latch_);
  auto in_range = [&](const Row& key) {
    if (key.empty()) return false;
    if (hi.has_value() && key[0].Compare(*hi) > 0) return false;
    return true;
  };
  Row start;
  if (lo.has_value()) start.push_back(*lo);

  auto scan_tree = [&](BPlusTree<Row>& tree, bool is_primary) {
    auto it = lo.has_value() ? tree.LowerBound(start) : tree.Begin();
    for (; it.Valid() && in_range(it.key()); it.Next()) {
      if (is_primary) {
        keys_out->push_back(it.key());
        rows_out->push_back(it.value());
      } else {
        const Row& pk = it.value();
        const Row* row = const_cast<BPlusTree<Row>&>(primary_).Find(pk);
        if (row != nullptr) {
          keys_out->push_back(pk);
          rows_out->push_back(*row);
        }
      }
    }
  };

  if (index_name.empty()) {
    scan_tree(const_cast<BPlusTree<Row>&>(primary_), /*is_primary=*/true);
    return Status::OK();
  }
  for (const Secondary& sec : secondaries_) {
    if (common::EqualsIgnoreCase(sec.info.name, index_name)) {
      scan_tree(*sec.tree, /*is_primary=*/false);
      return Status::OK();
    }
  }
  return Status::NotFound("index '" + std::string(index_name) +
                          "' not found on table '" + name() + "'");
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& column_names) {
  if (column_names.empty()) {
    return Status::InvalidArgument("index must cover at least one column");
  }
  Secondary sec;
  sec.info.name = name;
  for (const std::string& col : column_names) {
    const int ordinal = schema_.FindColumn(col);
    if (ordinal < 0) {
      return Status::NotFound("column '" + col + "' not found in table '" +
                              this->name() + "'");
    }
    sec.info.columns.push_back(static_cast<size_t>(ordinal));
  }
  std::unique_lock lock(latch_);
  for (const Secondary& existing : secondaries_) {
    if (common::EqualsIgnoreCase(existing.info.name, name)) {
      return Status::AlreadyExists("index '" + name + "' already exists");
    }
  }
  sec.tree = std::make_unique<BPlusTree<Row>>();
  for (auto it = primary_.Begin(); it.Valid(); it.Next()) {
    sec.tree->Insert(MakeSecondaryKey(sec, it.value(), it.key()), it.key());
  }
  index_infos_.push_back(sec.info);
  secondaries_.push_back(std::move(sec));
  return Status::OK();
}

std::optional<std::string> Table::FindIndexOnColumn(
    size_t column_ordinal) const {
  // Prefer the clustered (primary) index.
  if (schema_.has_primary_key() && schema_.primary_key()[0] == column_ordinal) {
    return std::string();
  }
  std::shared_lock lock(latch_);
  for (const IndexInfo& info : index_infos_) {
    if (!info.columns.empty() && info.columns[0] == column_ordinal) {
      return info.name;
    }
  }
  return std::nullopt;
}

void Table::Truncate() {
  std::unique_lock lock(latch_);
  // Rebuild empty trees; cheapest way to drop all nodes.
  std::vector<Row> keys;
  for (auto it = primary_.Begin(); it.Valid(); it.Next()) {
    keys.push_back(it.key());
  }
  for (const Row& k : keys) primary_.Erase(k);
  for (Secondary& sec : secondaries_) {
    sec.tree = std::make_unique<BPlusTree<Row>>();
  }
  row_count_.store(0, std::memory_order_relaxed);
}

}  // namespace sqlcm::storage
