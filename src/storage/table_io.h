// Crash-safe CSV persist / restore for tables.
//
// Used for (a) persisting LAT contents across server restarts (paper §4.3:
// "it is possible to maintain LAT data over multiple restarts of the
// database server, by uploading the contents of a table to a specific LAT
// at database startup time") and (b) the Query_logging baseline's forced
// synchronous writes.
//
// Snapshot file format (docs/ROBUSTNESS.md):
//   #sqlcm-snapshot v=1 crc=<8 hex digits> len=<body bytes>
//   <CSV header row>
//   <CSV data rows...>
// The CRC-32 and byte length cover everything after the header line, so a
// truncated or bit-flipped file is detected before any row is seeded.
// Writes go to `path.tmp` + fsync + atomic rename; the previous snapshot is
// rotated to `path.bak` first, and loads fall back to it when the primary
// is missing, truncated or corrupt. Files without the magic header are
// loaded as plain CSV (pre-snapshot compatibility).
#ifndef SQLCM_STORAGE_TABLE_IO_H_
#define SQLCM_STORAGE_TABLE_IO_H_

#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "storage/table.h"

namespace sqlcm::storage {

/// Fault-injection point names honoured by this module (common/fault.h).
inline constexpr char kFaultSnapshotWrite[] = "storage.snapshot.write";
inline constexpr char kFaultSnapshotRead[] = "storage.snapshot.read";
inline constexpr char kFaultSyncLogWrite[] = "storage.synclog.write";

/// Snapshot container versions. The container layout (header + CRC + CSV
/// body) is identical for all; the version tags what the *rows* mean so a
/// reader can negotiate the record schema before parsing:
///   v1  materialized output rows (LAT columns + trailing timestamp)
///   v2  raw aggregation-state rows (moments + aging blocks; see
///       Lat::ExportState and docs/ROBUSTNESS.md)
///   v3  v2 plus per-sketch-aggregate `#sketch` cells (QUANTILE/DISTINCT
///       payloads) — written whenever the LAT has sketch aggregates, so a
///       v2-only reader rejects the file instead of mis-indexing cells
/// Version 0 denotes a legacy plain-CSV file without the magic header.
inline constexpr int kSnapshotVersionLegacyCsv = 0;
inline constexpr int kSnapshotVersionV1 = 1;
inline constexpr int kSnapshotVersionV2 = 2;
inline constexpr int kSnapshotVersionV3 = 3;

/// Writes the full table to `path` as a checksummed snapshot tagged with
/// `version`. The write is atomic: content goes to `path.tmp` (fsync) and
/// is renamed over `path` only when complete, so a failure at any point
/// leaves the previous snapshot intact. An existing `path` is rotated to
/// `path.bak` first.
common::Status WriteTableCsv(const Table& table, const std::string& path,
                             int version = kSnapshotVersionV1);

/// Atomically replaces `path` with `content`: writes to `path.tmp`, fsyncs
/// and renames over `path` (then fsyncs the parent directory so the rename
/// itself is durable), so a reader never observes a partial file and a
/// crash immediately after publish cannot lose the entry. No .bak rotation
/// or snapshot header — this is the publish primitive for derived
/// artifacts regenerated wholesale (e.g. the Prometheus metrics exposition
/// dump) and for federation spool deltas, not for recoverable state with
/// history.
common::Status WriteFileAtomic(const std::string& path,
                               std::string_view content);

/// fsyncs the directory containing `path`, making a just-completed
/// rename/unlink of that entry durable. POSIX requires this extra step:
/// fsync of the file alone does not persist the directory entry.
common::Status FsyncParentDir(const std::string& path);

/// WriteTableCsv with bounded retry/backoff for transient failures:
/// up to `attempts` tries, sleeping `backoff_micros` (doubling each retry)
/// between them. `*retries` (optional) reports how many retries ran.
common::Status WriteTableCsvWithRetry(const Table& table,
                                      const std::string& path, int attempts,
                                      int64_t backoff_micros,
                                      common::Clock* clock,
                                      int* retries = nullptr,
                                      int version = kSnapshotVersionV1);

/// Outcome detail for LoadTableCsv: which snapshot version was read,
/// whether the last-good fallback snapshot was used and why the primary
/// was rejected.
struct SnapshotLoadInfo {
  bool used_fallback = false;
  std::string primary_error;  // set when used_fallback is true
  /// Version of the file actually loaded (kSnapshotVersionLegacyCsv for a
  /// headerless plain-CSV file).
  int version = kSnapshotVersionLegacyCsv;
};

/// Reads just the snapshot header of `path` and reports its version
/// (kSnapshotVersionLegacyCsv when the magic header is absent). Used for
/// version negotiation: a reader whose record schema depends on the
/// version peeks before building the staging schema. IOError when the file
/// cannot be opened or is empty.
common::Result<int> PeekSnapshotVersion(const std::string& path);

/// Loads rows from a snapshot (or plain CSV) file into `table`. Column
/// order in the file must match the table schema. The whole file is
/// verified and parsed before the first insert, so a corrupt file never
/// half-loads; on verification failure `path.bak` is tried. Rows whose
/// primary key already exists are skipped (count reported via *skipped).
common::Status LoadTableCsv(Table* table, const std::string& path,
                            size_t* skipped = nullptr,
                            SnapshotLoadInfo* info = nullptr);

/// Append-only CSV sink with optional per-row fsync; models the "forced
/// synchronous writes" of the Query_logging baseline (§6.2.2(a)).
class SyncCsvWriter {
 public:
  /// Opens `path` for appending (a crashed-and-restarted baseline keeps its
  /// prior log); pass `truncate=true` to start a fresh log instead.
  /// `sync_every_row` forces fdatasync per AppendRow.
  static common::Result<std::unique_ptr<SyncCsvWriter>> Open(
      const std::string& path, bool sync_every_row, bool truncate = false);

  ~SyncCsvWriter();
  SyncCsvWriter(const SyncCsvWriter&) = delete;
  SyncCsvWriter& operator=(const SyncCsvWriter&) = delete;

  common::Status AppendRow(const common::Row& row);
  common::Status Flush();

  size_t rows_written() const { return rows_written_; }

 private:
  SyncCsvWriter(int fd, bool sync_every_row)
      : fd_(fd), sync_every_row_(sync_every_row) {}

  int fd_;
  bool sync_every_row_;
  size_t rows_written_ = 0;
  std::string buffer_;
};

}  // namespace sqlcm::storage

#endif  // SQLCM_STORAGE_TABLE_IO_H_
