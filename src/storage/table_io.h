// CSV persist / restore for tables.
//
// Used for (a) persisting LAT contents across server restarts (paper §4.3:
// "it is possible to maintain LAT data over multiple restarts of the
// database server, by uploading the contents of a table to a specific LAT
// at database startup time") and (b) the Query_logging baseline's forced
// synchronous writes.
#ifndef SQLCM_STORAGE_TABLE_IO_H_
#define SQLCM_STORAGE_TABLE_IO_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace sqlcm::storage {

/// Writes the full table to `path` as CSV with a header row of column
/// names. Overwrites any existing file.
common::Status WriteTableCsv(const Table& table, const std::string& path);

/// Appends rows from a CSV file (with header) into `table`. Column order in
/// the file must match the table schema. Rows whose primary key already
/// exists are skipped (the count of skipped rows is reported in *skipped if
/// non-null).
common::Status LoadTableCsv(Table* table, const std::string& path,
                            size_t* skipped = nullptr);

/// Append-only CSV sink with optional per-row fsync; models the "forced
/// synchronous writes" of the Query_logging baseline (§6.2.2(a)).
class SyncCsvWriter {
 public:
  /// Opens (truncates) `path`. `sync_every_row` forces fsync per AppendRow.
  static common::Result<std::unique_ptr<SyncCsvWriter>> Open(
      const std::string& path, bool sync_every_row);

  ~SyncCsvWriter();
  SyncCsvWriter(const SyncCsvWriter&) = delete;
  SyncCsvWriter& operator=(const SyncCsvWriter&) = delete;

  common::Status AppendRow(const common::Row& row);
  common::Status Flush();

  size_t rows_written() const { return rows_written_; }

 private:
  SyncCsvWriter(int fd, bool sync_every_row)
      : fd_(fd), sync_every_row_(sync_every_row) {}

  int fd_;
  bool sync_every_row_;
  size_t rows_written_ = 0;
  std::string buffer_;
};

}  // namespace sqlcm::storage

#endif  // SQLCM_STORAGE_TABLE_IO_H_
