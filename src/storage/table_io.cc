#include "storage/table_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/string_util.h"

namespace sqlcm::storage {

using common::CsvEscape;
using common::CsvParseLine;
using common::CsvRecordComplete;
using common::FaultKind;
using common::FaultRegistry;
using common::Result;
using common::Row;
using common::Status;
using common::Value;

namespace {

constexpr std::string_view kSnapshotMagic = "#sqlcm-snapshot";

std::string RowToCsv(const Row& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ',';
    // Strings are written raw (CSV-escaped), other values via ToString().
    const Value& v = row[i];
    line += CsvEscape(v.is_string() ? v.string_value() : v.ToString());
  }
  line += '\n';
  return line;
}

/// CSV body of the table: header row of column names, then every row.
std::string TableToCsvBody(const Table& table) {
  std::string body;
  const auto& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) body += ',';
    body += CsvEscape(schema.column(i).name);
  }
  body += '\n';
  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 1024, &keys, &rows) == 0) break;
    for (const Row& row : rows) body += RowToCsv(row);
    after = keys.back();
  }
  return body;
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write('" + path +
                             "'): " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads one logical CSV record: physical lines are joined (with their
/// newlines restored) until every opened quote is closed.
bool ReadCsvRecord(std::istream& in, std::string* record) {
  if (!std::getline(in, *record)) return false;
  while (!CsvRecordComplete(*record)) {
    std::string next;
    if (!std::getline(in, next)) break;  // unterminated quote: caller decides
    *record += '\n';
    *record += next;
  }
  return true;
}

/// Fully parses and validates a snapshot (or legacy plain-CSV) file into
/// rows matching `table`'s schema. Nothing is inserted here, so a corrupt
/// file can be rejected wholesale and a fallback tried. `*version_out`
/// reports the container version that was read.
Status ParseSnapshotFile(const Table& table, const std::string& path,
                         std::vector<Row>* out, int* version_out) {
  *version_out = kSnapshotVersionLegacyCsv;
  if (FaultRegistry::Get()->Fire(kFaultSnapshotRead)) {
    return Status::IOError("fault injected: read of '" + path + "' failed");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }

  std::string body;
  if (common::StartsWith(line, kSnapshotMagic)) {
    // "#sqlcm-snapshot v=1 crc=xxxxxxxx len=123"
    int version = -1;
    unsigned long crc = 0;
    unsigned long long len = 0;
    if (std::sscanf(line.c_str(), "#sqlcm-snapshot v=%d crc=%8lx len=%llu",
                    &version, &crc, &len) != 3) {
      return Status::IOError("'" + path + "' has a malformed snapshot header");
    }
    if (version < kSnapshotVersionV1 || version > kSnapshotVersionV3) {
      return Status::IOError("'" + path + "' has unsupported snapshot version " +
                             std::to_string(version));
    }
    *version_out = version;
    std::ostringstream rest;
    rest << in.rdbuf();
    body = rest.str();
    if (body.size() != len) {
      return Status::IOError(
          "'" + path + "' is truncated: header says " + std::to_string(len) +
          " body bytes, file has " + std::to_string(body.size()));
    }
    const uint32_t actual = common::Crc32(body);
    if (actual != static_cast<uint32_t>(crc)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "crc mismatch: header %08lx, body %08x",
                    crc, actual);
      return Status::IOError("'" + path + "' is corrupt (" + buf + ")");
    }
  } else {
    // Legacy plain CSV: the first line is already the column header.
    std::ostringstream rest;
    rest << in.rdbuf();
    body = line + '\n' + rest.str();
  }

  std::istringstream body_in(body);
  std::string record;
  if (!ReadCsvRecord(body_in, &record)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  const auto header = CsvParseLine(record);
  const auto& schema = table.schema();
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(header.size()) +
        " columns, table '" + table.name() + "' has " +
        std::to_string(schema.num_columns()));
  }
  size_t record_no = 1;
  while (ReadCsvRecord(body_in, &record)) {
    ++record_no;
    if (record.empty()) continue;
    if (!CsvRecordComplete(record)) {
      return Status::ParseError("'" + path + "' record " +
                                std::to_string(record_no) +
                                ": unterminated quoted field");
    }
    const auto fields = CsvParseLine(record);
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("'" + path + "' record " +
                                std::to_string(record_no) + ": wrong arity");
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      SQLCM_ASSIGN_OR_RETURN(
          auto v, catalog::ParseValueText(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open('" + dir + "'): " + std::strerror(errno));
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::IOError("fsync('" + dir + "'): " + std::strerror(errno));
  }
  ::close(fd);
  return status;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + tmp + "'): " + std::strerror(errno));
  }
  Status write_status = WriteAll(fd, content, tmp);
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status =
        Status::IOError("fsync('" + tmp + "'): " + std::strerror(errno));
  }
  ::close(fd);
  if (!write_status.ok()) {
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename('" + tmp + "' -> '" + path +
                           "'): " + std::strerror(errno));
  }
  // Without this the rename may still sit only in the directory's page
  // cache: a crash right after publish could lose the new entry (or, for
  // spool files, the whole delta) even though the data blocks are durable.
  return FsyncParentDir(path);
}

Status WriteTableCsv(const Table& table, const std::string& path,
                     int version) {
  if (version < kSnapshotVersionV1 || version > kSnapshotVersionV3) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  const FaultKind fault = FaultRegistry::Get()->FireKind(kFaultSnapshotWrite);
  if (fault == FaultKind::kIOError) {
    // Failure before any byte reaches disk; destination left untouched.
    return Status::IOError("fault injected: write of '" + path + "' failed");
  }

  std::string body = TableToCsvBody(table);
  char header[64];
  std::snprintf(header, sizeof(header), "%s v=%d crc=%08x len=%zu\n",
                std::string(kSnapshotMagic).c_str(), version,
                common::Crc32(body), body.size());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + tmp + "'): " + std::strerror(errno));
  }
  if (fault == FaultKind::kShortWrite) {
    // Torn write: half the payload lands, then the "disk" fails. The tmp
    // file is left behind exactly as a crashed writer would leave it.
    (void)WriteAll(fd, std::string(header) + body.substr(0, body.size() / 2),
                   tmp);
    ::close(fd);
    return Status::IOError("fault injected: short write to '" + tmp + "'");
  }
  Status write_status = WriteAll(fd, header, tmp);
  if (write_status.ok()) write_status = WriteAll(fd, body, tmp);
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status =
        Status::IOError("fsync('" + tmp + "'): " + std::strerror(errno));
  }
  ::close(fd);
  if (!write_status.ok()) {
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (fault == FaultKind::kCrashRename) {
    // The durable tmp exists but the process "crashed" before publishing
    // it; the previous snapshot at `path` remains the valid one.
    return Status::IOError("fault injected: crash before rename of '" + tmp +
                           "'");
  }
  // Rotate the previous good snapshot to .bak, then publish atomically.
  // (A crash between the two renames leaves only .bak, which LoadTableCsv
  // falls back to.)
  if (::access(path.c_str(), F_OK) == 0) {
    const std::string bak = path + ".bak";
    if (::rename(path.c_str(), bak.c_str()) != 0) {
      return Status::IOError("rename('" + path + "' -> '" + bak +
                             "'): " + std::strerror(errno));
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename('" + tmp + "' -> '" + path +
                           "'): " + std::strerror(errno));
  }
  // Make both renames (the .bak rotation and the publish) durable; a crash
  // after a non-synced rename could otherwise roll the directory back to a
  // state where neither the new snapshot nor the rotated .bak survives.
  return FsyncParentDir(path);
}

Status WriteTableCsvWithRetry(const Table& table, const std::string& path,
                              int attempts, int64_t backoff_micros,
                              common::Clock* clock, int* retries,
                              int version) {
  if (retries != nullptr) *retries = 0;
  Status status;
  int64_t backoff = backoff_micros;
  for (int attempt = 0; attempt < std::max(1, attempts); ++attempt) {
    if (attempt > 0) {
      if (retries != nullptr) ++*retries;
      if (clock != nullptr && backoff > 0) clock->SleepMicros(backoff);
      backoff *= 2;
    }
    status = WriteTableCsv(table, path, version);
    if (status.ok()) return status;
  }
  return status;
}

common::Result<int> PeekSnapshotVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  if (!common::StartsWith(line, kSnapshotMagic)) {
    return kSnapshotVersionLegacyCsv;
  }
  int version = -1;
  if (std::sscanf(line.c_str(), "#sqlcm-snapshot v=%d", &version) != 1) {
    return Status::IOError("'" + path + "' has a malformed snapshot header");
  }
  return version;
}

Status LoadTableCsv(Table* table, const std::string& path, size_t* skipped,
                    SnapshotLoadInfo* info) {
  std::vector<Row> rows;
  int version = kSnapshotVersionLegacyCsv;
  Status status = ParseSnapshotFile(*table, path, &rows, &version);
  if (!status.ok()) {
    // Primary unusable; fall back to the last good rotated snapshot.
    const std::string bak = path + ".bak";
    std::vector<Row> bak_rows;
    if (::access(bak.c_str(), F_OK) == 0 &&
        ParseSnapshotFile(*table, bak, &bak_rows, &version).ok()) {
      rows = std::move(bak_rows);
      if (info != nullptr) {
        info->used_fallback = true;
        info->primary_error = status.ToString();
      }
    } else {
      return status;
    }
  }
  if (info != nullptr) info->version = version;
  size_t skipped_local = 0;
  for (Row& row : rows) {
    auto result = table->Insert(std::move(row));
    if (!result.ok()) {
      if (result.status().IsAlreadyExists()) {
        ++skipped_local;
        continue;
      }
      return result.status();
    }
  }
  if (skipped != nullptr) *skipped = skipped_local;
  return Status::OK();
}

Result<std::unique_ptr<SyncCsvWriter>> SyncCsvWriter::Open(
    const std::string& path, bool sync_every_row, bool truncate) {
  const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + path + "'): " + std::strerror(errno));
  }
  return std::unique_ptr<SyncCsvWriter>(new SyncCsvWriter(fd, sync_every_row));
}

SyncCsvWriter::~SyncCsvWriter() {
  if (fd_ >= 0) {
    Flush();
    ::close(fd_);
  }
}

Status SyncCsvWriter::AppendRow(const Row& row) {
  buffer_ += RowToCsv(row);
  ++rows_written_;
  if (sync_every_row_ || buffer_.size() > (1u << 16)) {
    SQLCM_RETURN_IF_ERROR(Flush());
    if (sync_every_row_ && ::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
    }
  }
  return Status::OK();
}

Status SyncCsvWriter::Flush() {
  if (FaultRegistry::Get()->Fire(kFaultSyncLogWrite)) {
    return Status::IOError("fault injected: sync-log write failed");
  }
  size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

}  // namespace sqlcm::storage
