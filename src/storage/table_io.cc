#include "storage/table_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace sqlcm::storage {

using common::CsvEscape;
using common::CsvParseLine;
using common::Result;
using common::Row;
using common::Status;
using common::Value;

namespace {

std::string RowToCsv(const Row& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ',';
    // Strings are written raw (CSV-escaped), other values via ToString().
    const Value& v = row[i];
    line += CsvEscape(v.is_string() ? v.string_value() : v.ToString());
  }
  line += '\n';
  return line;
}

}  // namespace

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const auto& schema = table.schema();
  std::string header;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) header += ',';
    header += CsvEscape(schema.column(i).name);
  }
  out << header << '\n';

  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 1024, &keys, &rows) == 0) break;
    for (const Row& row : rows) out << RowToCsv(row);
    after = keys.back();
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadTableCsv(Table* table, const std::string& path, size_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  const auto header = CsvParseLine(line);
  const auto& schema = table->schema();
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(header.size()) +
        " columns, table '" + table->name() + "' has " +
        std::to_string(schema.num_columns()));
  }
  size_t skipped_local = 0;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = CsvParseLine(line);
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("'" + path + "' line " +
                                std::to_string(line_no) + ": wrong arity");
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      SQLCM_ASSIGN_OR_RETURN(
          auto v, catalog::ParseValueText(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    auto result = table->Insert(std::move(row));
    if (!result.ok()) {
      if (result.status().IsAlreadyExists()) {
        ++skipped_local;
        continue;
      }
      return result.status();
    }
  }
  if (skipped != nullptr) *skipped = skipped_local;
  return Status::OK();
}

Result<std::unique_ptr<SyncCsvWriter>> SyncCsvWriter::Open(
    const std::string& path, bool sync_every_row) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + path + "'): " + std::strerror(errno));
  }
  return std::unique_ptr<SyncCsvWriter>(new SyncCsvWriter(fd, sync_every_row));
}

SyncCsvWriter::~SyncCsvWriter() {
  if (fd_ >= 0) {
    Flush();
    ::close(fd_);
  }
}

Status SyncCsvWriter::AppendRow(const Row& row) {
  buffer_ += RowToCsv(row);
  ++rows_written_;
  if (sync_every_row_ || buffer_.size() > (1u << 16)) {
    SQLCM_RETURN_IF_ERROR(Flush());
    if (sync_every_row_ && ::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
    }
  }
  return Status::OK();
}

Status SyncCsvWriter::Flush() {
  size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

}  // namespace sqlcm::storage
