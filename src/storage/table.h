// Heap-of-record table with a clustered B+-tree primary index and optional
// secondary B+-tree indexes.
//
// Physical consistency (index structure) is protected by a per-table
// shared_mutex ("latch"); *logical* isolation between transactions is the
// job of txn::LockManager one level up. Scans copy rows out in batches so
// the latch is never held while a transaction blocks on a lock.
#ifndef SQLCM_STORAGE_TABLE_H_
#define SQLCM_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/bplus_tree.h"

namespace sqlcm::storage {

/// Description of one secondary index.
struct IndexInfo {
  std::string name;
  std::vector<size_t> columns;  // ordinals into the table schema
};

class Table {
 public:
  /// `table_id` is the catalog-assigned stable id used in lock resources.
  Table(uint32_t table_id, catalog::TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  uint32_t table_id() const { return table_id_; }
  const catalog::TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }

  /// Number of rows (approximate under concurrency; exact when quiesced).
  size_t row_count() const { return row_count_.load(std::memory_order_relaxed); }

  // -- Primary-key plumbing ------------------------------------------------

  /// The key a row is stored under: declared PK values, or the implicit
  /// rowid for tables without a declared key (stored out-of-band).
  /// For implicit-rowid tables the key is assigned at insert and returned.
  bool uses_implicit_rowid() const { return !schema_.has_primary_key(); }

  // -- Mutations (validate + maintain all indexes) -------------------------

  /// Validates and inserts `row`; returns the storage key. AlreadyExists on
  /// duplicate primary key.
  common::Result<common::Row> Insert(common::Row row);

  /// Inserts with a caller-chosen key (used by rollback of deletes on
  /// implicit-rowid tables, and CSV restore).
  common::Status InsertWithKey(const common::Row& key, common::Row row);

  /// Deletes by storage key; returns the old row. NotFound if absent.
  common::Result<common::Row> Delete(const common::Row& key);

  /// Replaces the row stored at `key`; the new row must map to the same
  /// key. Returns the old row. NotFound if absent.
  common::Result<common::Row> Update(const common::Row& key,
                                     common::Row new_row);

  // -- Reads ---------------------------------------------------------------

  /// Point lookup by storage key.
  std::optional<common::Row> Get(const common::Row& key) const;

  /// Copies up to `limit` (row-key, row) pairs with key > `after` (or from
  /// the start when `after` is empty) in key order. Returns count copied;
  /// 0 means end of table. Latch released between calls.
  size_t ScanBatch(const std::optional<common::Row>& after, size_t limit,
                   std::vector<common::Row>* keys_out,
                   std::vector<common::Row>* rows_out) const;

  /// Rows whose index key starts with `prefix` (equality on the first
  /// |prefix| index columns). `index_name` empty means the primary index.
  /// Appends (key, row) pairs. NotFound for unknown index name.
  common::Status IndexPrefixLookup(std::string_view index_name,
                                   const common::Row& prefix,
                                   std::vector<common::Row>* keys_out,
                                   std::vector<common::Row>* rows_out) const;

  /// Rows whose *first* index column lies in [lo, hi] (either bound may be
  /// absent). `index_name` empty means primary index.
  common::Status IndexRangeLookup(std::string_view index_name,
                                  const std::optional<common::Value>& lo,
                                  const std::optional<common::Value>& hi,
                                  std::vector<common::Row>* keys_out,
                                  std::vector<common::Row>* rows_out) const;

  // -- Secondary indexes ---------------------------------------------------

  /// Builds a secondary index over existing data.
  common::Status CreateIndex(const std::string& name,
                             const std::vector<std::string>& column_names);

  const std::vector<IndexInfo>& indexes() const { return index_infos_; }

  /// Returns the index whose column list starts with the given ordinal, to
  /// let the optimizer match predicates to access paths. Empty string =
  /// primary. nullopt if none.
  std::optional<std::string> FindIndexOnColumn(size_t column_ordinal) const;

  /// Removes every row. Used by Reset-style maintenance and tests.
  void Truncate();

  // -- Virtual (system-view) tables ----------------------------------------

  /// Marks this table as a read-only system view whose contents are
  /// rebuilt on demand: `refresh` runs at the start of every fresh scan or
  /// index lookup, *before* the table latch is taken, and is expected to
  /// repopulate the table (Truncate + Insert). The callback must serialize
  /// itself against concurrent refreshes. DML/DROP rejection for virtual
  /// tables is enforced one level up, in the planner and session.
  void SetVirtualRefresh(std::function<void()> refresh);

  bool is_virtual() const {
    return is_virtual_.load(std::memory_order_acquire);
  }

 private:
  /// Runs the refresh callback for virtual tables; no-op otherwise.
  void MaybeRefresh() const;

  struct Secondary {
    IndexInfo info;
    // Key = index column values + primary key (for uniqueness); payload =
    // primary key.
    std::unique_ptr<BPlusTree<common::Row>> tree;
  };

  common::Row MakeSecondaryKey(const Secondary& sec, const common::Row& row,
                               const common::Row& pk) const;

  // Precondition: caller holds latch_ exclusively.
  common::Status InsertLocked(const common::Row& key, common::Row row);
  common::Result<common::Row> DeleteLocked(const common::Row& key);

  const uint32_t table_id_;
  const catalog::TableSchema schema_;

  mutable std::shared_mutex latch_;
  BPlusTree<common::Row> primary_;
  std::vector<Secondary> secondaries_;
  std::vector<IndexInfo> index_infos_;  // mirrors secondaries_ for readers
  std::atomic<int64_t> next_rowid_{1};
  std::atomic<size_t> row_count_{0};

  std::atomic<bool> is_virtual_{false};
  std::function<void()> refresh_;  // immutable once is_virtual_ is set
};

}  // namespace sqlcm::storage

#endif  // SQLCM_STORAGE_TABLE_H_
