// Federation delta container (docs/FEDERATION.md).
//
// A *delta* is one node's epoch-numbered shipment of LAT state changes: for
// every LAT the node exports, the state records (v2 snapshot codec — raw
// moments + aging-block deques; see Lat::ExportState) whose additive
// moments are increments since the previous epoch's baseline, while the
// fold-stable fields (min/max/first/last/any) stay cumulative. Each record
// carries its Lat::StateDeltaMode so baseline repair after a crash knows
// whether to add or replace.
//
// Wire format (one file per epoch in the spool, one payload per send):
//   #sqlcm-fed v=1 crc=<8 hex> len=<body bytes>
//   node=<escaped id>
//   epoch=<n>
//   ts=<created micros>
//   lat=<escaped name> records=<m>
//   <I|F>,<cell>,<cell>,...          (m record lines)
//   ... further lat sections ...
// The CRC-32 and length cover everything after the header line, so a torn
// or bit-flipped delta is rejected before any record is decoded. Cells use
// a self-describing tagged codec (kind survives the round trip) with
// %-escaping of the delimiters, so framing never depends on payload text.
#ifndef SQLCM_FED_DELTA_H_
#define SQLCM_FED_DELTA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sqlcm/lat.h"

namespace sqlcm::fed {

inline constexpr char kFedMagic[] = "#sqlcm-fed";
inline constexpr int kFedVersion = 1;

/// One shipped state record: the full state-schema row (group cells, then
/// 9 codec cells per aggregate — 10 for sketch-bearing QUANTILE/DISTINCT
/// aggregates, whose `#sketch` cell ships the sketch codec payload) plus
/// how its additive moments relate to the baseline (incremental diff vs
/// cumulative fresh restart). Quantile sketch payloads are additive like
/// #sum (the delta carries bucket-count increments); DISTINCT payloads are
/// fold-stable like #min/#max (cumulative registers, duplicate-safe).
struct DeltaRecord {
  cm::Lat::StateDeltaMode mode = cm::Lat::StateDeltaMode::kIncremental;
  common::Row cells;
};

struct LatSection {
  std::string lat_name;
  std::vector<DeltaRecord> records;
};

struct Delta {
  std::string node_id;
  int64_t epoch = 0;
  int64_t created_micros = 0;
  /// Per-Open incarnation nonce of the shipping node (0 = unknown/legacy).
  /// A change between consecutive deltas from one node tells the
  /// aggregator the node restarted — even when a reset landed on counts
  /// identical to the baseline, which the delta arithmetic alone cannot
  /// detect (docs/FEDERATION.md §Reset detection).
  int64_t incarnation = 0;
  /// Empty for a pure heartbeat epoch (nothing changed; still ships so the
  /// aggregator's liveness tracking sees the node).
  std::vector<LatSection> lats;
};

std::string EncodeDelta(const Delta& delta);
/// Verifies the container (magic, version, CRC, length) and decodes every
/// record. ParseError is permanent: the sender quarantines rather than
/// retries a payload that fails here.
common::Result<Delta> DecodeDelta(std::string_view text);

// -- Shared primitives (also used by the aggregator checkpoint format) ----

/// %-escapes text so it can live in one comma/space/newline-framed field:
/// '%'->%25, ','->%2C, ' '->%20, '\n'->%0A, '\r'->%0D.
std::string EscapeFedText(std::string_view s);
common::Result<std::string> UnescapeFedText(std::string_view s);

/// Self-describing cell codec: N (null), B0/B1, I<decimal>,
/// D<shortest round-trip double>, S<escaped text>.
std::string EncodeCell(const common::Value& v);
common::Result<common::Value> DecodeCell(std::string_view s);

/// Renders/parses one record line (`<I|F>,<cell>,...`).
std::string EncodeRecordLine(const DeltaRecord& record);
common::Result<DeltaRecord> DecodeRecordLine(std::string_view line);

/// Wraps `body` in a checksummed container headed by `magic` / parses it
/// back, verifying CRC and length. Shared by deltas, node baselines and
/// aggregator checkpoints so every durable federation artifact detects
/// truncation the same way.
std::string WrapChecksummed(std::string_view magic, std::string_view body);
common::Result<std::string_view> UnwrapChecksummed(std::string_view magic,
                                                   std::string_view text);

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_DELTA_H_
