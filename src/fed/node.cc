#include "fed/node.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/fault.h"
#include "common/string_util.h"
#include "fed/delta.h"
#include "fed/state_table.h"
#include "storage/table_io.h"

namespace sqlcm::fed {

using common::Result;
using common::Row;
using common::Status;
using StateDeltaMode = cm::Lat::StateDeltaMode;

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError("mkdir('" + dir + "'): " + std::strerror(errno));
}

Row GroupKeyOf(const Row& record, size_t group_width) {
  return Row(record.begin(), record.begin() + static_cast<long>(group_width));
}

/// Nonzero nonce distinct across in-process re-Opens (the counter) and
/// across process restarts (the wall micros). 0 is reserved for "unknown"
/// on the wire, so legacy deltas stay distinguishable.
int64_t DeriveIncarnation(common::Clock* clock) {
  static std::atomic<int64_t> g_open_seq{0};
  const int64_t seq = g_open_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t nonce =
      (clock->NowMicros() << 16) ^ seq;  // wraparound is fine for a nonce
  return nonce != 0 ? nonce : 1;
}

}  // namespace

FedNode::FedNode(Options options, std::vector<cm::Lat*> lats)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : common::SystemClock::Get()) {
  lats_.reserve(lats.size());
  for (cm::Lat* lat : lats) {
    lats_.push_back({lat, {}, lat->reset_generation()});
  }
}

Result<std::unique_ptr<FedNode>> FedNode::Open(Options options,
                                               std::vector<cm::Lat*> lats) {
  if (options.node_id.empty()) {
    return Status::InvalidArgument("federation node needs a node_id");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("federation node needs a directory");
  }
  auto node = std::unique_ptr<FedNode>(
      new FedNode(std::move(options), std::move(lats)));
  node->incarnation_ = node->options_.incarnation != 0
                           ? node->options_.incarnation
                           : DeriveIncarnation(node->clock_);
  SQLCM_RETURN_IF_ERROR(EnsureDir(node->options_.dir));
  SQLCM_ASSIGN_OR_RETURN(node->spool_,
                         DeltaSpool::Open(node->options_.dir + "/spool"));
  SQLCM_RETURN_IF_ERROR(node->LoadBaseline());
  SQLCM_RETURN_IF_ERROR(node->RepairFromSpool());
  return node;
}

Status FedNode::LoadBaseline() {
  std::ifstream in(baseline_path(), std::ios::binary);
  if (!in.is_open()) return Status::OK();  // first boot: empty baseline
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read('" + baseline_path() + "') failed");
  }
  SQLCM_ASSIGN_OR_RETURN(const Delta baseline, DecodeDelta(content.str()));
  for (const LatSection& section : baseline.lats) {
    for (AttachedLat& attached : lats_) {
      if (attached.lat->name() != section.lat_name) continue;
      const size_t group_width = attached.lat->group_width();
      for (const DeltaRecord& record : section.records) {
        attached.baseline[GroupKeyOf(record.cells, group_width)] =
            record.cells;
      }
      break;
    }
  }
  last_exported_epoch_ = baseline.epoch;
  durable_epoch_.store(baseline.epoch, std::memory_order_release);
  return Status::OK();
}

Status FedNode::RepairFromSpool() {
  const int64_t durable = durable_epoch_.load(std::memory_order_acquire);
  int64_t max_epoch = last_exported_epoch_;
  for (const int64_t epoch : spool_->List()) {
    max_epoch = std::max(max_epoch, epoch);
    if (epoch <= durable) continue;  // already reflected in the baseline
    // Published after the last baseline write: fold it back in so future
    // diffs do not re-ship its increments once it is sent and acked.
    auto payload = spool_->ReadEpoch(epoch);
    Result<Delta> delta =
        payload.ok() ? DecodeDelta(*payload)
                     : Result<Delta>(payload.status());
    if (!delta.ok()) {
      // Unreadable published epoch: its data is lost either way, but the
      // node must not keep trying to send it. Quarantine and move on (the
      // baseline then simply re-ships whatever of its data still lives in
      // the LAT with a later epoch).
      (void)spool_->Quarantine(epoch);
      continue;
    }
    for (const LatSection& section : delta->lats) {
      for (AttachedLat& attached : lats_) {
        if (attached.lat->name() != section.lat_name) continue;
        const size_t group_width = attached.lat->group_width();
        for (const DeltaRecord& record : section.records) {
          Row key = GroupKeyOf(record.cells, group_width);
          auto base = attached.baseline.find(key);
          if (record.mode == StateDeltaMode::kFresh ||
              base == attached.baseline.end()) {
            // Fresh records replace; an incremental record without a
            // baseline row means the group was new this epoch (its diff is
            // the whole record), so adopting it verbatim is the combine.
            attached.baseline[std::move(key)] = record.cells;
            continue;
          }
          SQLCM_ASSIGN_OR_RETURN(
              Row combined,
              attached.lat->CombineStateRecords(base->second, record.cells,
                                                record.mode));
          base->second = std::move(combined);
        }
        break;
      }
    }
    stats_.repaired_epochs.Inc();
  }
  last_exported_epoch_ = max_epoch;
  if (max_epoch > durable) {
    // Best effort: a failed rewrite keeps the repaired epochs ineligible
    // until the next successful baseline write (every ExportEpoch retries).
    if (!WriteBaseline().ok()) stats_.baseline_write_failures.Inc();
  }
  return Status::OK();
}

Status FedNode::WriteBaseline() {
  if (common::FaultFires(kFaultFedBaselineWrite)) {
    return Status::IOError("fault injected: baseline write for node " +
                           options_.node_id);
  }
  Delta baseline;
  baseline.node_id = options_.node_id;
  baseline.epoch = last_exported_epoch_;
  baseline.created_micros = clock_->NowMicros();
  baseline.incarnation = incarnation_;
  for (const AttachedLat& attached : lats_) {
    if (attached.baseline.empty()) continue;
    LatSection section;
    section.lat_name = attached.lat->name();
    section.records.reserve(attached.baseline.size());
    for (const auto& [_, record] : attached.baseline) {
      section.records.push_back({StateDeltaMode::kFresh, record});
    }
    baseline.lats.push_back(std::move(section));
  }
  SQLCM_RETURN_IF_ERROR(
      storage::WriteFileAtomic(baseline_path(), EncodeDelta(baseline)));
  durable_epoch_.store(last_exported_epoch_, std::memory_order_release);
  return Status::OK();
}

Result<int64_t> FedNode::ExportEpoch() {
  const int64_t start_micros = clock_->NowMicros();
  const int64_t epoch = last_exported_epoch_ + 1;
  Delta delta;
  delta.node_id = options_.node_id;
  delta.epoch = epoch;
  delta.created_micros = start_micros;
  delta.incarnation = incarnation_;
  std::vector<BaselineMap> next_baselines(lats_.size());
  std::vector<uint64_t> next_generations(lats_.size());
  uint64_t shipped = 0;
  for (size_t i = 0; i < lats_.size(); ++i) {
    cm::Lat* lat = lats_[i].lat;
    // A Reset since the last export invalidates the baseline: a diff
    // against it would under-ship (or ship nothing when the new counts
    // happen to match), so every group goes out mode-F this epoch.
    next_generations[i] = lat->reset_generation();
    const bool force_fresh =
        next_generations[i] != lats_[i].reset_generation;
    SQLCM_ASSIGN_OR_RETURN(auto staging, MakeStateStagingTable(*lat));
    SQLCM_RETURN_IF_ERROR(lat->ExportState(staging.get(), start_micros));
    LatSection section;
    section.lat_name = lat->name();
    const size_t group_width = lat->group_width();
    std::optional<Row> after;
    std::vector<Row> keys, rows;
    for (;;) {
      keys.clear();
      rows.clear();
      if (staging->ScanBatch(after, 256, &keys, &rows) == 0) break;
      after = keys.back();
      for (Row& record : rows) {
        Row key = GroupKeyOf(record, group_width);
        const auto base = force_fresh ? lats_[i].baseline.end()
                                      : lats_[i].baseline.find(key);
        Row diffed;
        SQLCM_ASSIGN_OR_RETURN(
            const StateDeltaMode mode,
            lat->DiffStateRecord(
                record, base != lats_[i].baseline.end() ? &base->second
                                                        : nullptr,
                &diffed));
        if (mode != StateDeltaMode::kNone) {
          section.records.push_back({mode, std::move(diffed)});
          ++shipped;
        }
        next_baselines[i][std::move(key)] = std::move(record);
      }
    }
    if (!section.records.empty()) delta.lats.push_back(std::move(section));
  }
  // Publish first: a failure here consumes no epoch number and leaves the
  // baseline untouched, so the caller can simply try again later.
  SQLCM_RETURN_IF_ERROR(spool_->Put(epoch, EncodeDelta(delta)));
  for (size_t i = 0; i < lats_.size(); ++i) {
    lats_[i].baseline = std::move(next_baselines[i]);
    lats_[i].reset_generation = next_generations[i];
  }
  last_exported_epoch_ = epoch;
  stats_.epochs_exported.Inc();
  stats_.records_shipped.Inc(shipped);
  if (!WriteBaseline().ok()) {
    // The epoch is published but not yet eligible to send; the next
    // successful baseline write (or Open() repair after a crash) frees it.
    stats_.baseline_write_failures.Inc();
  }
  const int64_t end_micros = clock_->NowMicros();
  stats_.export_micros.Record(end_micros - start_micros);
  if (options_.spans != nullptr && options_.spans->enabled()) {
    obs::Span span;
    span.span_id = span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    span.ref = common::Fnv1a64(options_.node_id);
    span.start_nanos = start_micros * 1000;
    span.duration_nanos = (end_micros - start_micros) * 1000;
    span.kind = obs::SpanKind::kShip;
    span.detail = static_cast<uint8_t>(delta.lats.size());
    options_.spans->Record(span);
  }
  return epoch;
}

void FedNode::RegisterMetrics(obs::MetricsRegistry* registry) const {
  const std::string base = "fed.node." + options_.node_id + ".";
  registry->RegisterCounter(base + "epochs_exported",
                            &stats_.epochs_exported);
  registry->RegisterCounter(base + "records_shipped",
                            &stats_.records_shipped);
  registry->RegisterCounter(base + "baseline_write_failures",
                            &stats_.baseline_write_failures);
  registry->RegisterCounter(base + "repaired_epochs",
                            &stats_.repaired_epochs);
  registry->RegisterHistogram(base + "export", &stats_.export_micros);
}

}  // namespace sqlcm::fed
