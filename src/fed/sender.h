// Spool drain pipeline: poller -> bounded queue -> retrying sender.
//
// DeltaSender pulls *eligible* epochs (<= the node's durable_epoch, see
// node.h for why) from the spool, at most `queue_capacity` per pump, and
// pushes each payload through a DeltaTransport with exponential backoff and
// decorrelated jitter. Failure taxonomy:
//   * retryable (IOError / injected fed.send) — back off and retry, up to
//     `max_attempts_per_pump` this pump; the epoch stays spooled and is
//     retried on the next pump;
//   * permanent (ParseError / InvalidArgument from the aggregator) — the
//     payload itself is poison; quarantine immediately;
//   * poison by exhaustion — an epoch whose *cumulative* attempts reach
//     `poison_attempts` is quarantined so one bad delta cannot wedge the
//     queue forever;
//   * lost ack (injected fed.ack) — the delta was delivered but the spool
//     remove is skipped, so the next pump re-sends it. The aggregator's
//     epoch high-water mark makes the duplicate a no-op.
//
// Single-threaded by design: Pump() is called from the node's export loop
// (or a dedicated thread owned by the caller). Backoff sleeps go through
// the injected Clock, so tests with a MockClock terminate instantly.
#ifndef SQLCM_FED_SENDER_H_
#define SQLCM_FED_SENDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "fed/node.h"
#include "obs/metrics.h"

namespace sqlcm::fed {

/// Fires before each delivery attempt; a fire is a retryable send failure
/// (network down).
inline constexpr char kFaultFedSend[] = "fed.send";
/// Fires after a *successful* delivery; a fire drops the ack, leaving the
/// epoch spooled for a duplicate re-send.
inline constexpr char kFaultFedAck[] = "fed.ack";

/// Where drained deltas go. The in-process aggregator implements this;
/// tests substitute flaky/recording transports.
class DeltaTransport {
 public:
  virtual ~DeltaTransport() = default;
  /// Delivers one encoded delta payload. IOError = retryable; ParseError /
  /// InvalidArgument = the payload is poison (quarantine, don't retry).
  virtual common::Status Deliver(std::string_view payload) = 0;
};

struct DeltaSenderStats {
  obs::Counter epochs_sent;        // delivered + acked + removed
  obs::Counter send_retries;       // retryable failures that were retried
  obs::Counter send_exhausted;     // pumps that gave up (epoch kept spooled)
  obs::Counter poison_quarantined; // permanent failure or attempt exhaustion
  obs::Counter acks_lost;          // delivered but remove skipped (duplicate)
  obs::LatencyHistogram drain_micros;  // per-epoch publish->removed latency
};

class DeltaSender {
 public:
  struct Options {
    /// Bounded-queue depth: max epochs pulled from the spool per Pump().
    int queue_capacity = 16;
    /// Retry budget within a single Pump() for one epoch.
    int max_attempts_per_pump = 4;
    /// Cumulative attempts (across pumps) before an epoch is quarantined.
    int poison_attempts = 16;
    int64_t backoff_base_micros = 1'000;
    int64_t backoff_cap_micros = 1'000'000;
    uint64_t jitter_seed = 0x5eed5eed;
    common::Clock* clock = nullptr;  // null = SystemClock
  };

  DeltaSender(FedNode* node, DeltaTransport* transport, Options options);

  /// Drains up to queue_capacity eligible epochs, oldest first. Returns the
  /// number of epochs fully acked (delivered + removed) this pump. Only
  /// I/O-level spool errors surface as a Status; per-epoch send failures
  /// are absorbed into the retry/poison machinery and the stats.
  common::Result<int> Pump();

  DeltaSenderStats& stats() const { return stats_; }
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  /// Decorrelated-jitter backoff for the given per-pump attempt (1-based).
  int64_t BackoffMicros(int attempt);

  FedNode* node_;
  DeltaTransport* transport_;
  Options options_;
  common::Clock* clock_;
  common::Random jitter_;
  /// epoch -> cumulative delivery attempts (pruned on ack/quarantine).
  std::unordered_map<int64_t, int> attempts_;
  mutable DeltaSenderStats stats_;
};

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_SENDER_H_
