// Federation monitor node: periodic LAT state-delta export with a durable
// baseline and a crash-safe spool (docs/FEDERATION.md).
//
// Every ExportEpoch():
//   1. exports each attached LAT's raw state (v2 codec) and diffs it
//      against the previous epoch's baseline (Lat::DiffStateRecord) into an
//      epoch-numbered delta;
//   2. publishes the delta into the spool (atomic; crash loses the whole
//      epoch, never a torn one);
//   3. commits the new baseline in memory and rewrites the durable baseline
//      file (full cumulative state, same container format).
//
// The *eligibility gate*: only epochs ≤ durable_epoch() — the epoch of the
// last successfully written baseline file — may be sent. Without it a
// sequence of {baseline write fails, delta sent + acked + removed, crash}
// would restart from a stale baseline and re-ship already-acked increments
// under a new epoch number, double-counting at the aggregator. With it,
// spooled-but-ineligible epochs wait until a later baseline write lands.
//
// Open() repairs the inverse crash (spool publish succeeded, baseline write
// never ran): spooled epochs beyond the durable baseline are folded back
// into the baseline (Lat::CombineStateRecords) before anything becomes
// eligible, so the baseline again reflects every published epoch.
#ifndef SQLCM_FED_NODE_H_
#define SQLCM_FED_NODE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"
#include "fed/spool.h"
#include "obs/metrics.h"
#include "obs/span_ring.h"
#include "sqlcm/lat.h"

namespace sqlcm::fed {

/// Fault-injection point for the durable baseline write (io_error leaves
/// the durable epoch behind the exported epoch; the eligibility gate and
/// Open() repair are exactly the machinery this exercises).
inline constexpr char kFaultFedBaselineWrite[] = "fed.baseline.write";

/// Per-node export-side metrics (registered by RegisterMetrics).
struct FedNodeStats {
  obs::Counter epochs_exported;
  obs::Counter records_shipped;       // delta records across all epochs
  obs::Counter baseline_write_failures;
  obs::Counter repaired_epochs;       // spooled epochs folded back at Open
  obs::LatencyHistogram export_micros;
};

class FedNode {
 public:
  struct Options {
    std::string node_id;
    /// Spool lives at `dir`/spool, the baseline file at `dir`/baseline.
    std::string dir;
    common::Clock* clock = nullptr;  // null = SystemClock
    /// Optional ship-span sink (SpanKind::kShip, one span per ExportEpoch).
    obs::SpanRing* spans = nullptr;
    /// Incarnation nonce stamped into every shipped delta. 0 (the default)
    /// derives a fresh nonzero nonce per Open(); tests may pin one.
    int64_t incarnation = 0;
  };

  /// Opens the spool, loads the durable baseline and repairs it from any
  /// spooled epochs published after the last baseline write. `lats` are the
  /// LATs this node exports; their specs must match the aggregator's fleet
  /// LATs of the same name.
  static common::Result<std::unique_ptr<FedNode>> Open(
      Options options, std::vector<cm::Lat*> lats);

  /// Exports one epoch (possibly an empty heartbeat) into the spool.
  /// Returns the published epoch number. A spool-publish failure consumes
  /// no epoch number and leaves the baseline untouched (safe to retry); a
  /// baseline-write failure still returns OK — the epoch is published, just
  /// not yet eligible to send.
  common::Result<int64_t> ExportEpoch();

  /// Highest epoch the durable baseline reflects; the sender must not ship
  /// epochs beyond it (see file comment).
  int64_t durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }
  int64_t last_exported_epoch() const { return last_exported_epoch_; }

  const std::string& node_id() const { return options_.node_id; }
  /// Per-Open nonce carried in every delta header so the aggregator can
  /// tell restarts apart even when counts line up (docs/FEDERATION.md).
  int64_t incarnation() const { return incarnation_; }
  DeltaSpool* spool() { return spool_.get(); }
  FedNodeStats& stats() const { return stats_; }
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  using BaselineMap = std::unordered_map<common::Row, common::Row,
                                         common::RowHasher, common::RowEq>;
  struct AttachedLat {
    cm::Lat* lat;
    BaselineMap baseline;  // group key -> full state record at last export
    /// Lat::reset_generation() at the last export. A bump since then means
    /// the LAT was Reset, so the next export ships every group mode-F
    /// (full cumulative record, ignoring the baseline) — a reset that
    /// happens to land on baseline-identical counts would otherwise diff
    /// to kNone and the new incarnation's observations would never ship.
    uint64_t reset_generation = 0;
  };

  FedNode(Options options, std::vector<cm::Lat*> lats);

  common::Status LoadBaseline();
  common::Status RepairFromSpool();
  /// Encodes the full baseline (mode-F records) and publishes it
  /// atomically; advances durable_epoch_ on success.
  common::Status WriteBaseline();
  std::string baseline_path() const { return options_.dir + "/baseline"; }

  Options options_;
  common::Clock* clock_;
  std::vector<AttachedLat> lats_;
  std::unique_ptr<DeltaSpool> spool_;
  int64_t last_exported_epoch_ = 0;   // baseline reflects this epoch
  int64_t incarnation_ = 0;
  std::atomic<int64_t> durable_epoch_{0};
  std::atomic<uint64_t> span_seq_{0};
  mutable FedNodeStats stats_;
};

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_NODE_H_
