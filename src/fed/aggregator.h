// Fleet aggregator: ingests node deltas with exactly-once *effect*.
//
// Dedup state per peer node is an epoch high-water mark (highest epoch up
// to which *every* epoch has been applied) plus a sparse set of applied
// epochs above it (out-of-order arrivals). An epoch at or below the mark,
// or in the set, is acknowledged as a no-op — that is what makes the
// sender's at-least-once delivery (lost acks, crash re-sends) safe. Merge
// arithmetic itself is commutative for everything a delta carries
// (additive moments add; min/max/any fold), so reordered epochs apply in
// any order; FIRST/LAST are folded best-effort in arrival order.
//
// Durability: accepted payloads are appended to a framed, checksummed
// journal (fsync before apply — a crash after the ack therefore cannot
// lose an applied delta), and Checkpoint() folds journal + fleet state
// into one atomic checkpoint file, then truncates the journal. Open()
// restores checkpoint -> peers -> journal replay; replayed entries that
// the checkpoint already covers dedup to no-ops.
//
// Late deltas: a delta older than `late_window_micros` (by its embedded
// creation timestamp) is dropped — but still *marked applied* and acked,
// so the sender stops re-shipping it. Within the window, late deltas merge
// normally; the per-LAT aging machinery (Lat::MergeState prunes expired
// blocks on ingest) keeps windowed aggregates honest.
#ifndef SQLCM_FED_AGGREGATOR_H_
#define SQLCM_FED_AGGREGATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "fed/delta.h"
#include "fed/sender.h"
#include "obs/metrics.h"
#include "obs/span_ring.h"
#include "sqlcm/lat.h"

namespace sqlcm::fed {

/// Fires at the top of Ingest, before any effect; a fire is a retryable
/// ingest failure (aggregator briefly down).
inline constexpr char kFaultFedIngest[] = "fed.ingest";

/// Point-in-time per-node health, as surfaced by sqlcm_fleet_nodes.
struct NodeHealth {
  std::string node_id;
  const char* state;  // "up" | "stale" | "dead"
  int64_t last_epoch = 0;    // highest epoch ever applied
  int64_t hwm = 0;           // highest contiguous applied epoch
  int64_t lag_micros = 0;    // now - last successful ingest
  uint64_t applied = 0;
  uint64_t duplicates = 0;
  uint64_t reorders = 0;     // applied epochs that arrived out of order
  uint64_t late_dropped = 0;
  uint64_t decode_failures = 0;
  uint64_t restarts = 0;     // incarnation-nonce changes observed
};

/// Point-in-time per-LAT fleet rollup, as surfaced by sqlcm_fleet_stats.
struct FleetLatStats {
  std::string lat;
  int64_t rows = 0;  // groups currently in the fleet LAT
  uint64_t deltas_applied = 0;   // sections merged into this LAT
  uint64_t records_merged = 0;
  int64_t last_ingest_micros = 0;
};

struct AggregatorStats {
  obs::Counter deltas_ingested;
  obs::Counter duplicates;
  obs::Counter reorders;
  obs::Counter late_dropped;
  obs::Counter decode_failures;
  obs::Counter node_restarts;
  obs::Counter journal_appends;
  obs::Counter checkpoints;
  obs::LatencyHistogram ingest_micros;
};

class FleetAggregator : public DeltaTransport {
 public:
  struct Options {
    /// Journal lives at `dir`/journal, checkpoints at `dir`/checkpoint.
    std::string dir;
    common::Clock* clock = nullptr;  // null = SystemClock
    obs::SpanRing* spans = nullptr;  // optional kIngest span per delta
    /// Deltas whose creation timestamp is older than this are dropped
    /// (acked + marked applied, never merged). <= 0 disables the check.
    int64_t late_window_micros = 0;
    /// Health thresholds on time since last successful ingest.
    int64_t stale_after_micros = 10'000'000;
    int64_t dead_after_micros = 60'000'000;
  };

  /// Restores checkpoint + journal into the given (freshly constructed,
  /// empty) fleet LATs. LAT specs must match the nodes' LATs by name.
  static common::Result<std::unique_ptr<FleetAggregator>> Open(
      Options options, std::vector<cm::Lat*> fleet_lats);
  ~FleetAggregator() override;

  /// DeltaTransport: in-process fleets hand the aggregator directly to
  /// each node's DeltaSender.
  common::Status Deliver(std::string_view payload) override {
    return Ingest(payload);
  }

  /// Journals then merges one encoded delta. IOError = retryable (no
  /// effect happened); ParseError / InvalidArgument = the payload can
  /// never apply (sender should quarantine). Duplicates and already-seen
  /// reorders return OK without touching any LAT.
  common::Status Ingest(std::string_view payload);

  /// Writes an atomic checkpoint (fleet state + peer dedup state) and
  /// truncates the journal.
  common::Status Checkpoint();

  std::vector<NodeHealth> SnapshotNodes() const;
  std::vector<FleetLatStats> SnapshotLats() const;

  AggregatorStats& stats() const { return stats_; }
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct PeerState {
    int64_t hwm = 0;
    std::set<int64_t> applied_above;  // applied epochs > hwm (sparse)
    int64_t last_epoch = 0;
    int64_t last_ingest_micros = 0;
    uint64_t applied = 0;
    uint64_t duplicates = 0;
    uint64_t reorders = 0;
    uint64_t late_dropped = 0;
    uint64_t decode_failures = 0;
    /// Last nonzero incarnation nonce seen from this node; a different
    /// nonzero nonce on a later delta counts a restart. Deltas from
    /// pre-nonce senders carry 0 and never trip the detector.
    int64_t incarnation = 0;
    uint64_t restarts = 0;

    bool Seen(int64_t epoch) const {
      return epoch <= hwm || applied_above.count(epoch) > 0;
    }
    void MarkApplied(int64_t epoch);
  };
  struct FleetLat {
    cm::Lat* lat;
    uint64_t deltas_applied = 0;
    uint64_t records_merged = 0;
    int64_t last_ingest_micros = 0;
  };

  FleetAggregator(Options options, std::vector<cm::Lat*> fleet_lats);

  FleetLat* FindLat(std::string_view name);
  /// Dedup/late checks + validate + journal (`payload`, skipped on replay)
  /// + merge; shared by Ingest and journal replay. Replay skips the
  /// late-drop check — journaled entries were already accepted once.
  common::Status ApplyDelta(const Delta& delta, bool replay,
                            std::string_view payload);
  common::Status AppendJournal(std::string_view payload);
  common::Status LoadCheckpoint();
  common::Status ReplayJournal();
  common::Status OpenJournal(bool truncate);
  std::string journal_path() const { return options_.dir + "/journal"; }
  std::string checkpoint_path() const { return options_.dir + "/checkpoint"; }

  Options options_;
  common::Clock* clock_;
  std::vector<FleetLat> lats_;
  std::map<std::string, PeerState> peers_;  // ordered: stable view rows
  int journal_fd_ = -1;
  std::atomic<uint64_t> span_seq_{0};
  mutable AggregatorStats stats_;
};

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_AGGREGATOR_H_
