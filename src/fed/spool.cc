#include "fed/spool.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "storage/table_io.h"

namespace sqlcm::fed {

using common::FaultKind;
using common::Result;
using common::Status;

namespace {

constexpr char kEpochPrefix[] = "epoch-";
constexpr char kEpochSuffix[] = ".delta";

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError("mkdir('" + dir + "'): " + std::strerror(errno));
}

/// Parses `epoch-<digits>.delta`; -1 for anything else.
int64_t EpochFromName(const char* name) {
  const size_t prefix_len = sizeof(kEpochPrefix) - 1;
  const size_t suffix_len = sizeof(kEpochSuffix) - 1;
  const size_t len = std::strlen(name);
  if (len <= prefix_len + suffix_len ||
      std::strncmp(name, kEpochPrefix, prefix_len) != 0 ||
      std::strcmp(name + len - suffix_len, kEpochSuffix) != 0) {
    return -1;
  }
  char* end = nullptr;
  const int64_t epoch = std::strtoll(name + prefix_len, &end, 10);
  if (end == nullptr || std::strncmp(end, kEpochSuffix, suffix_len) != 0) {
    return -1;
  }
  return epoch;
}

}  // namespace

DeltaSpool::DeltaSpool(std::string dir)
    : dir_(std::move(dir)), quarantine_dir_(dir_ + "/quarantine") {}

Result<std::unique_ptr<DeltaSpool>> DeltaSpool::Open(std::string dir) {
  auto spool = std::unique_ptr<DeltaSpool>(new DeltaSpool(std::move(dir)));
  SQLCM_RETURN_IF_ERROR(EnsureDir(spool->dir_));
  SQLCM_RETURN_IF_ERROR(EnsureDir(spool->quarantine_dir_));
  // Leftover tempfiles are crashed writers mid-publish; their epochs were
  // never durable, so discard them rather than resurrect a torn payload.
  DIR* d = ::opendir(spool->dir_.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir('" + spool->dir_ +
                           "'): " + std::strerror(errno));
  }
  while (dirent* entry = ::readdir(d)) {
    const size_t len = std::strlen(entry->d_name);
    if (len > 4 && std::strcmp(entry->d_name + len - 4, ".tmp") == 0) {
      ::unlink((spool->dir_ + "/" + entry->d_name).c_str());
    }
  }
  ::closedir(d);
  return spool;
}

std::string DeltaSpool::PathForEpoch(int64_t epoch) const {
  char name[48];
  std::snprintf(name, sizeof(name), "%s%016lld%s", kEpochPrefix,
                static_cast<long long>(epoch), kEpochSuffix);
  return dir_ + "/" + name;
}

Status DeltaSpool::Put(int64_t epoch, std::string_view payload) {
  const FaultKind fault =
      common::FaultRegistry::Get()->FireKind(kFaultFedSpoolWrite);
  if (fault == FaultKind::kIOError) {
    return Status::IOError("fault injected: spool write for epoch " +
                           std::to_string(epoch));
  }
  const std::string path = PathForEpoch(epoch);
  if (fault == FaultKind::kShortWrite || fault == FaultKind::kCrashRename) {
    // Model a crashed writer: a (possibly torn) tempfile exists but the
    // epoch was never published. Open() discards such tempfiles.
    std::ofstream tmp(path + ".tmp", std::ios::binary | std::ios::trunc);
    tmp << payload.substr(0, payload.size() / 2);
    return Status::IOError("fault injected: crash while spooling epoch " +
                           std::to_string(epoch));
  }
  return storage::WriteFileAtomic(path, payload);
}

std::vector<int64_t> DeltaSpool::List() const {
  std::vector<int64_t> epochs;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return epochs;
  while (dirent* entry = ::readdir(d)) {
    const int64_t epoch = EpochFromName(entry->d_name);
    if (epoch >= 0) epochs.push_back(epoch);
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<std::string> DeltaSpool::ReadEpoch(int64_t epoch) const {
  const std::string path = PathForEpoch(epoch);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("open('" + path + "'): " + std::strerror(errno));
  }
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read('" + path + "') failed");
  }
  return content.str();
}

Status DeltaSpool::Remove(int64_t epoch) {
  if (common::FaultFires(kFaultFedSpoolRemove)) {
    return Status::IOError("fault injected: spool remove for epoch " +
                           std::to_string(epoch));
  }
  const std::string path = PathForEpoch(epoch);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink('" + path + "'): " + std::strerror(errno));
  }
  return storage::FsyncParentDir(path);
}

Status DeltaSpool::Quarantine(int64_t epoch) {
  const std::string from = PathForEpoch(epoch);
  const std::string to =
      quarantine_dir_ + from.substr(from.find_last_of('/'));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename('" + from + "' -> '" + to +
                           "'): " + std::strerror(errno));
  }
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  // Both directory entries moved: make the disappearance from the spool
  // and the appearance in quarantine durable.
  SQLCM_RETURN_IF_ERROR(storage::FsyncParentDir(from));
  return storage::FsyncParentDir(to);
}

}  // namespace sqlcm::fed
