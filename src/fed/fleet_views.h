// Fleet-wide SQL surface over the aggregator (mirrors sqlcm/system_views):
//
//   sqlcm_fleet_nodes  one row per peer node — dedup high-water mark,
//                      last epoch, ingest lag, duplicate/reorder/late/
//                      decode counters, and an up/stale/dead health state
//                      derived from heartbeat age
//   sqlcm_fleet_stats  one row per fleet LAT — group count plus how many
//                      delta sections / records have been merged into it
//
// Both are virtual tables: contents rebuild from aggregator snapshots at
// the start of every scan, so plain SELECT (and therefore ECA rules over
// the aggregator's own database) can watch the fleet.
#ifndef SQLCM_FED_FLEET_VIEWS_H_
#define SQLCM_FED_FLEET_VIEWS_H_

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "fed/aggregator.h"

namespace sqlcm::engine {
class Database;
}

namespace sqlcm::storage {
class Table;
}

namespace sqlcm::fed {

inline constexpr const char* kFleetNodesView = "sqlcm_fleet_nodes";
inline constexpr const char* kFleetStatsView = "sqlcm_fleet_stats";

class FleetViews {
 public:
  FleetViews(FleetAggregator* aggregator, engine::Database* db);
  ~FleetViews();

  FleetViews(const FleetViews&) = delete;
  FleetViews& operator=(const FleetViews&) = delete;

 private:
  storage::Table* Register(const std::string& name,
                           std::vector<std::pair<std::string, char>> columns,
                           const std::vector<std::string>& primary_key);
  void RefreshNodes(storage::Table* table);
  void RefreshStats(storage::Table* table);

  FleetAggregator* aggregator_;
  engine::Database* db_;
  std::vector<std::string> registered_;  // names we own and must drop
  std::mutex refresh_mutex_;
};

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_FLEET_VIEWS_H_
