#include "fed/delta.h"

#include <cstdio>
#include <cstdlib>

#include "common/crc32.h"
#include "common/string_util.h"

namespace sqlcm::fed {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using common::ValueKind;

namespace {

std::vector<std::string_view> SplitLines(std::string_view s) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < s.size()) {
    size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) pos = s.size();
    lines.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

std::vector<std::string_view> SplitField(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Result<int64_t> ParseInt(std::string_view s) {
  const std::string text(s);
  char* end = nullptr;
  const int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::ParseError("bad integer in delta: '" + text + "'");
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::ParseError("bad double in delta: '" + text + "'");
  }
  return v;
}

/// `key=value` line accessor; ParseError when the prefix does not match.
Result<std::string_view> FieldAfter(std::string_view line,
                                    std::string_view prefix) {
  if (line.substr(0, prefix.size()) != prefix) {
    return Status::ParseError("delta: expected '" + std::string(prefix) +
                              "...', got '" + std::string(line) + "'");
  }
  return line.substr(prefix.size());
}

}  // namespace

std::string EscapeFedText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ',': out += "%2C"; break;
      case ' ': out += "%20"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeFedText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    const std::string_view code =
        i + 2 < s.size() ? s.substr(i + 1, 2) : std::string_view();
    if (code == "25") out += '%';
    else if (code == "2C") out += ',';
    else if (code == "20") out += ' ';
    else if (code == "0A") out += '\n';
    else if (code == "0D") out += '\r';
    else {
      return Status::ParseError("bad escape in delta text '" +
                                std::string(s) + "'");
    }
    i += 2;
  }
  return out;
}

std::string EncodeCell(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "N";
    case ValueKind::kBool:
      return v.bool_value() ? "B1" : "B0";
    case ValueKind::kInt:
      return "I" + std::to_string(v.int_value());
    case ValueKind::kDouble:
      return "D" + common::FormatDoubleShortest(v.double_value());
    case ValueKind::kString:
      return "S" + EscapeFedText(v.string_value());
  }
  return "N";
}

Result<Value> DecodeCell(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty cell in delta record");
  const std::string_view payload = s.substr(1);
  switch (s[0]) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value::Bool(payload == "1");
    case 'I': {
      SQLCM_ASSIGN_OR_RETURN(const int64_t v, ParseInt(payload));
      return Value::Int(v);
    }
    case 'D': {
      SQLCM_ASSIGN_OR_RETURN(const double v, ParseDouble(payload));
      return Value::Double(v);
    }
    case 'S': {
      SQLCM_ASSIGN_OR_RETURN(std::string text, UnescapeFedText(payload));
      return Value::String(std::move(text));
    }
    default:
      return Status::ParseError("bad cell '" + std::string(s) +
                                "' in delta record");
  }
}

std::string EncodeRecordLine(const DeltaRecord& record) {
  std::string line(record.mode == cm::Lat::StateDeltaMode::kFresh ? "F"
                                                                  : "I");
  for (const Value& cell : record.cells) {
    line += ',';
    line += EncodeCell(cell);
  }
  return line;
}

Result<DeltaRecord> DecodeRecordLine(std::string_view line) {
  const auto fields = SplitField(line, ',');
  if (fields.empty() || (fields[0] != "I" && fields[0] != "F")) {
    return Status::ParseError("delta record missing I/F mode: '" +
                              std::string(line) + "'");
  }
  DeltaRecord record;
  record.mode = fields[0] == "F" ? cm::Lat::StateDeltaMode::kFresh
                                 : cm::Lat::StateDeltaMode::kIncremental;
  record.cells.reserve(fields.size() - 1);
  for (size_t i = 1; i < fields.size(); ++i) {
    SQLCM_ASSIGN_OR_RETURN(Value cell, DecodeCell(fields[i]));
    record.cells.push_back(std::move(cell));
  }
  return record;
}

std::string WrapChecksummed(std::string_view magic, std::string_view body) {
  char header[96];
  std::snprintf(header, sizeof(header), "%.*s v=%d crc=%08x len=%zu\n",
                static_cast<int>(magic.size()), magic.data(), kFedVersion,
                common::Crc32(body), body.size());
  std::string out(header);
  out += body;
  return out;
}

Result<std::string_view> UnwrapChecksummed(std::string_view magic,
                                           std::string_view text) {
  const size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Status::ParseError("federation container: missing header line");
  }
  const std::string_view header = text.substr(0, eol);
  int version = 0;
  unsigned crc = 0;
  size_t len = 0;
  char parsed_magic[32] = {0};
  if (std::sscanf(std::string(header).c_str(), "%31s v=%d crc=%x len=%zu",
                  parsed_magic, &version, &crc, &len) != 4 ||
      magic != parsed_magic) {
    return Status::ParseError("federation container: bad header '" +
                              std::string(header) + "'");
  }
  if (version != kFedVersion) {
    return Status::ParseError("federation container: unsupported version " +
                              std::to_string(version));
  }
  const std::string_view body = text.substr(eol + 1);
  if (body.size() != len) {
    return Status::ParseError(
        "federation container: truncated body (" +
        std::to_string(body.size()) + " of " + std::to_string(len) +
        " bytes)");
  }
  if (common::Crc32(body) != crc) {
    return Status::ParseError("federation container: CRC mismatch");
  }
  return body;
}

std::string EncodeDelta(const Delta& delta) {
  std::string body;
  body += "node=" + EscapeFedText(delta.node_id) + "\n";
  body += "epoch=" + std::to_string(delta.epoch) + "\n";
  body += "ts=" + std::to_string(delta.created_micros) + "\n";
  body += "incarnation=" + std::to_string(delta.incarnation) + "\n";
  for (const LatSection& section : delta.lats) {
    body += "lat=" + EscapeFedText(section.lat_name) +
            " records=" + std::to_string(section.records.size()) + "\n";
    for (const DeltaRecord& record : section.records) {
      body += EncodeRecordLine(record);
      body += '\n';
    }
  }
  return WrapChecksummed(kFedMagic, body);
}

Result<Delta> DecodeDelta(std::string_view text) {
  SQLCM_ASSIGN_OR_RETURN(const std::string_view body,
                         UnwrapChecksummed(kFedMagic, text));
  const auto lines = SplitLines(body);
  if (lines.size() < 3) {
    return Status::ParseError("delta: missing node/epoch/ts lines");
  }
  Delta delta;
  {
    SQLCM_ASSIGN_OR_RETURN(const std::string_view node,
                           FieldAfter(lines[0], "node="));
    SQLCM_ASSIGN_OR_RETURN(delta.node_id, UnescapeFedText(node));
    SQLCM_ASSIGN_OR_RETURN(const std::string_view epoch,
                           FieldAfter(lines[1], "epoch="));
    SQLCM_ASSIGN_OR_RETURN(delta.epoch, ParseInt(epoch));
    SQLCM_ASSIGN_OR_RETURN(const std::string_view ts,
                           FieldAfter(lines[2], "ts="));
    SQLCM_ASSIGN_OR_RETURN(delta.created_micros, ParseInt(ts));
  }
  size_t i = 3;
  // The incarnation line is optional: pre-nonce deltas (and raw heartbeats
  // built without one) decode with incarnation 0 = "unknown".
  if (i < lines.size() && lines[i].rfind("incarnation=", 0) == 0) {
    SQLCM_ASSIGN_OR_RETURN(const std::string_view nonce,
                           FieldAfter(lines[i], "incarnation="));
    SQLCM_ASSIGN_OR_RETURN(delta.incarnation, ParseInt(nonce));
    ++i;
  }
  while (i < lines.size()) {
    SQLCM_ASSIGN_OR_RETURN(const std::string_view rest,
                           FieldAfter(lines[i], "lat="));
    const auto parts = SplitField(rest, ' ');
    if (parts.size() != 2) {
      return Status::ParseError("delta: bad lat section header '" +
                                std::string(lines[i]) + "'");
    }
    LatSection section;
    SQLCM_ASSIGN_OR_RETURN(section.lat_name, UnescapeFedText(parts[0]));
    SQLCM_ASSIGN_OR_RETURN(const std::string_view count_field,
                           FieldAfter(parts[1], "records="));
    SQLCM_ASSIGN_OR_RETURN(const int64_t count, ParseInt(count_field));
    ++i;
    if (count < 0 || i + static_cast<size_t>(count) > lines.size()) {
      return Status::ParseError("delta: lat section '" + section.lat_name +
                                "' claims more records than present");
    }
    section.records.reserve(static_cast<size_t>(count));
    for (int64_t r = 0; r < count; ++r, ++i) {
      SQLCM_ASSIGN_OR_RETURN(DeltaRecord record, DecodeRecordLine(lines[i]));
      section.records.push_back(std::move(record));
    }
    delta.lats.push_back(std::move(section));
  }
  return delta;
}

}  // namespace sqlcm::fed
