#include "fed/aggregator.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/fault.h"
#include "common/string_util.h"
#include "fed/state_table.h"
#include "storage/table_io.h"

namespace sqlcm::fed {

using common::Result;
using common::Row;
using common::Status;

namespace {

constexpr char kCheckpointMagic[] = "#sqlcm-fedckpt";
constexpr char kJournalEntryPrefix[] = "#entry len=";

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError("mkdir('" + dir + "'): " + std::strerror(errno));
}

Result<int64_t> ParseInt64(std::string_view s, const char* what) {
  int64_t value = 0;
  bool negative = false;
  size_t i = 0;
  if (i < s.size() && s[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= s.size()) {
    return Status::ParseError(std::string("empty ") + what);
  }
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::ParseError(std::string("bad ") + what + ": '" +
                                std::string(s) + "'");
    }
    value = value * 10 + (s[i] - '0');
  }
  return negative ? -value : value;
}

/// `key=value` field extractor over a space-separated line.
std::optional<std::string_view> FieldAfter(std::string_view line,
                                           std::string_view key) {
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t end = line.find(' ', pos);
    const std::string_view field =
        line.substr(pos, end == std::string_view::npos ? end : end - pos);
    if (field.size() > key.size() &&
        field.substr(0, key.size()) == key && field[key.size()] == '=') {
      return field.substr(key.size() + 1);
    }
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  return std::nullopt;
}

/// Pulls node= out of a payload that failed full decoding, so decode
/// failures can still be attributed to a peer when the line survived.
std::string BestEffortNodeId(std::string_view payload) {
  size_t pos = payload.find("\nnode=");
  if (pos == std::string_view::npos) return "";
  pos += 6;
  const size_t end = payload.find('\n', pos);
  auto unescaped = UnescapeFedText(payload.substr(
      pos, end == std::string_view::npos ? end : end - pos));
  return unescaped.ok() ? *unescaped : "";
}

}  // namespace

void FleetAggregator::PeerState::MarkApplied(int64_t epoch) {
  if (epoch <= hwm) return;
  if (epoch != hwm + 1) {
    applied_above.insert(epoch);
    return;
  }
  hwm = epoch;
  auto it = applied_above.begin();
  while (it != applied_above.end() && *it == hwm + 1) {
    hwm = *it;
    it = applied_above.erase(it);
  }
}

FleetAggregator::FleetAggregator(Options options,
                                 std::vector<cm::Lat*> fleet_lats)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : common::SystemClock::Get()) {
  lats_.reserve(fleet_lats.size());
  for (cm::Lat* lat : fleet_lats) lats_.push_back({lat});
}

FleetAggregator::~FleetAggregator() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

Result<std::unique_ptr<FleetAggregator>> FleetAggregator::Open(
    Options options, std::vector<cm::Lat*> fleet_lats) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("fleet aggregator needs a directory");
  }
  auto agg = std::unique_ptr<FleetAggregator>(
      new FleetAggregator(std::move(options), std::move(fleet_lats)));
  SQLCM_RETURN_IF_ERROR(EnsureDir(agg->options_.dir));
  SQLCM_RETURN_IF_ERROR(agg->LoadCheckpoint());
  SQLCM_RETURN_IF_ERROR(agg->ReplayJournal());
  SQLCM_RETURN_IF_ERROR(agg->OpenJournal(/*truncate=*/false));
  return agg;
}

FleetAggregator::FleetLat* FleetAggregator::FindLat(std::string_view name) {
  for (FleetLat& fl : lats_) {
    if (fl.lat->name() == name) return &fl;
  }
  return nullptr;
}

Status FleetAggregator::Ingest(std::string_view payload) {
  const int64_t start_micros = clock_->NowMicros();
  if (common::FaultFires(kFaultFedIngest)) {
    return Status::IOError("fault injected: fleet ingest");
  }
  Result<Delta> delta = DecodeDelta(payload);
  if (!delta.ok()) {
    stats_.decode_failures.Inc();
    const std::string node = BestEffortNodeId(payload);
    if (!node.empty()) ++peers_[node].decode_failures;
    return delta.status();
  }
  SQLCM_RETURN_IF_ERROR(ApplyDelta(*delta, /*replay=*/false, payload));
  const int64_t end_micros = clock_->NowMicros();
  stats_.ingest_micros.Record(end_micros - start_micros);
  if (options_.spans != nullptr && options_.spans->enabled()) {
    obs::Span span;
    span.span_id = span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    span.ref = common::Fnv1a64(delta->node_id);
    span.start_nanos = start_micros * 1000;
    span.duration_nanos = (end_micros - start_micros) * 1000;
    span.kind = obs::SpanKind::kIngest;
    span.detail = static_cast<uint8_t>(delta->lats.size());
    options_.spans->Record(span);
  }
  return Status::OK();
}

Status FleetAggregator::ApplyDelta(const Delta& delta, bool replay,
                                   std::string_view payload) {
  const int64_t now_micros = clock_->NowMicros();
  PeerState& peer = peers_[delta.node_id];
  // Restart detection runs before dedup: a new incarnation is health
  // signal even when its first delta is a duplicate epoch number.
  if (delta.incarnation != 0) {
    if (peer.incarnation != 0 && peer.incarnation != delta.incarnation) {
      ++peer.restarts;
      stats_.node_restarts.Inc();
    }
    peer.incarnation = delta.incarnation;
  }
  if (peer.Seen(delta.epoch)) {
    // Exactly-once effect: a re-send (lost ack, sender crash) or an
    // already-applied reorder acknowledges without touching any LAT.
    ++peer.duplicates;
    stats_.duplicates.Inc();
    if (!replay) peer.last_ingest_micros = now_micros;
    return Status::OK();
  }
  if (!replay && options_.late_window_micros > 0 &&
      now_micros - delta.created_micros > options_.late_window_micros) {
    // Too old to merge honestly; ack it and remember it as applied so the
    // sender stops re-shipping. No journal entry needed — replaying the
    // drop would drop again.
    peer.MarkApplied(delta.epoch);
    peer.last_epoch = std::max(peer.last_epoch, delta.epoch);
    ++peer.late_dropped;
    stats_.late_dropped.Inc();
    peer.last_ingest_micros = now_micros;
    return Status::OK();
  }
  // Validation pass: stage every section before merging anything, so a bad
  // record can never leave the fleet LATs partially updated.
  struct Staged {
    FleetLat* fl;
    std::unique_ptr<storage::Table> table;
    size_t records;
  };
  std::vector<Staged> staged;
  staged.reserve(delta.lats.size());
  for (const LatSection& section : delta.lats) {
    FleetLat* fl = FindLat(section.lat_name);
    if (fl == nullptr) {
      return Status::InvalidArgument("delta for unknown fleet LAT '" +
                                     section.lat_name + "'");
    }
    SQLCM_ASSIGN_OR_RETURN(auto table, MakeStateStagingTable(*fl->lat));
    for (const DeltaRecord& record : section.records) {
      // Dry-parse the codec cells (width + block grammar) up front;
      // MergeState below can then only fail on real I/O.
      Row scratch;
      SQLCM_RETURN_IF_ERROR(
          fl->lat->DiffStateRecord(record.cells, nullptr, &scratch)
              .status());
      SQLCM_RETURN_IF_ERROR(table->Insert(record.cells).status());
    }
    staged.push_back({fl, std::move(table), section.records.size()});
  }
  // Durability before effect: once journaled (fsync'd), the delta survives
  // an aggregator crash even though the ack races the merge.
  if (!replay) SQLCM_RETURN_IF_ERROR(AppendJournal(payload));
  for (Staged& s : staged) {
    SQLCM_RETURN_IF_ERROR(s.fl->lat->MergeState(*s.table, now_micros));
    ++s.fl->deltas_applied;
    s.fl->records_merged += s.records;
    s.fl->last_ingest_micros = now_micros;
  }
  if (delta.epoch < peer.last_epoch) {
    ++peer.reorders;
    stats_.reorders.Inc();
  }
  peer.MarkApplied(delta.epoch);
  peer.last_epoch = std::max(peer.last_epoch, delta.epoch);
  ++peer.applied;
  if (!replay) peer.last_ingest_micros = now_micros;
  stats_.deltas_ingested.Inc();
  return Status::OK();
}

Status FleetAggregator::OpenJournal(bool truncate) {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  const int flags =
      O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  journal_fd_ = ::open(journal_path().c_str(), flags, 0644);
  if (journal_fd_ < 0) {
    return Status::IOError("open('" + journal_path() +
                           "'): " + std::strerror(errno));
  }
  return Status::OK();
}

Status FleetAggregator::AppendJournal(std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 32);
  framed.append(kJournalEntryPrefix);
  framed.append(std::to_string(payload.size()));
  framed.push_back('\n');
  framed.append(payload);
  framed.push_back('\n');
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n = ::write(journal_fd_, framed.data() + written,
                              framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write('" + journal_path() +
                             "'): " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(journal_fd_) != 0) {
    return Status::IOError("fsync('" + journal_path() +
                           "'): " + std::strerror(errno));
  }
  stats_.journal_appends.Inc();
  return Status::OK();
}

Status FleetAggregator::ReplayJournal() {
  std::ifstream in(journal_path(), std::ios::binary);
  if (!in.is_open()) return Status::OK();  // no journal yet
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read('" + journal_path() + "') failed");
  }
  const std::string content = buffer.str();
  const size_t prefix_len = sizeof(kJournalEntryPrefix) - 1;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t header_end = content.find('\n', pos);
    if (header_end == std::string::npos ||
        content.compare(pos, prefix_len, kJournalEntryPrefix) != 0) {
      break;  // torn tail from a crashed append: everything before it holds
    }
    auto len = ParseInt64(
        std::string_view(content).substr(pos + prefix_len,
                                         header_end - pos - prefix_len),
        "journal frame length");
    if (!len.ok() || *len < 0) break;
    const size_t body_start = header_end + 1;
    if (body_start + static_cast<size_t>(*len) > content.size()) break;
    const std::string_view payload =
        std::string_view(content).substr(body_start,
                                         static_cast<size_t>(*len));
    pos = body_start + static_cast<size_t>(*len);
    if (pos < content.size() && content[pos] == '\n') ++pos;
    Result<Delta> delta = DecodeDelta(payload);
    if (!delta.ok()) {
      // A framed-but-corrupt entry: skip it, keep replaying later entries.
      stats_.decode_failures.Inc();
      continue;
    }
    SQLCM_RETURN_IF_ERROR(ApplyDelta(*delta, /*replay=*/true, {}));
  }
  return Status::OK();
}

Status FleetAggregator::Checkpoint() {
  const int64_t now_micros = clock_->NowMicros();
  std::string body;
  body.append("ts=").append(std::to_string(now_micros)).push_back('\n');
  for (const auto& [node_id, peer] : peers_) {
    body.append("peer=").append(EscapeFedText(node_id));
    body.append(" hwm=").append(std::to_string(peer.hwm));
    body.append(" last=").append(std::to_string(peer.last_epoch));
    body.append(" ingest=").append(std::to_string(peer.last_ingest_micros));
    body.append(" applied=").append(std::to_string(peer.applied));
    body.append(" dup=").append(std::to_string(peer.duplicates));
    body.append(" reorder=").append(std::to_string(peer.reorders));
    body.append(" late=").append(std::to_string(peer.late_dropped));
    body.append(" decode=").append(std::to_string(peer.decode_failures));
    body.append(" inc=").append(std::to_string(peer.incarnation));
    body.append(" restarts=").append(std::to_string(peer.restarts));
    body.append(" above=");
    if (peer.applied_above.empty()) {
      body.push_back('-');
    } else {
      bool first = true;
      for (const int64_t epoch : peer.applied_above) {
        if (!first) body.push_back('|');
        body.append(std::to_string(epoch));
        first = false;
      }
    }
    body.push_back('\n');
  }
  // Embedded fleet state: one mode-F record per group, same container the
  // nodes ship, so restore is just MergeState into empty LATs.
  Delta state;
  state.node_id = "fleet";
  state.created_micros = now_micros;
  for (FleetLat& fl : lats_) {
    SQLCM_ASSIGN_OR_RETURN(auto staging, MakeStateStagingTable(*fl.lat));
    SQLCM_RETURN_IF_ERROR(fl.lat->ExportState(staging.get(), now_micros));
    LatSection section;
    section.lat_name = fl.lat->name();
    std::optional<Row> after;
    std::vector<Row> keys, rows;
    for (;;) {
      keys.clear();
      rows.clear();
      if (staging->ScanBatch(after, 256, &keys, &rows) == 0) break;
      after = keys.back();
      for (Row& row : rows) {
        section.records.push_back(
            {cm::Lat::StateDeltaMode::kFresh, std::move(row)});
      }
    }
    if (!section.records.empty()) state.lats.push_back(std::move(section));
  }
  const std::string encoded = EncodeDelta(state);
  body.append("state len=").append(std::to_string(encoded.size()));
  body.push_back('\n');
  body.append(encoded);
  SQLCM_RETURN_IF_ERROR(storage::WriteFileAtomic(
      checkpoint_path(), WrapChecksummed(kCheckpointMagic, body)));
  // The checkpoint covers every journaled entry (journal before apply,
  // apply before checkpoint), so the journal can restart empty. A crash
  // between the two steps merely replays entries the peer marks dedup.
  SQLCM_RETURN_IF_ERROR(OpenJournal(/*truncate=*/true));
  stats_.checkpoints.Inc();
  return Status::OK();
}

Status FleetAggregator::LoadCheckpoint() {
  std::ifstream in(checkpoint_path(), std::ios::binary);
  if (!in.is_open()) return Status::OK();  // first boot
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read('" + checkpoint_path() + "') failed");
  }
  const std::string content = buffer.str();
  SQLCM_ASSIGN_OR_RETURN(std::string_view body,
                         UnwrapChecksummed(kCheckpointMagic, content));
  size_t pos = 0;
  while (pos < body.size()) {
    const size_t eol = body.find('\n', pos);
    const std::string_view line =
        body.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? body.size() : eol + 1;
    if (line.substr(0, 5) == "peer=") {
      auto id_field = FieldAfter(line, "peer");
      if (!id_field) return Status::ParseError("checkpoint peer line");
      SQLCM_ASSIGN_OR_RETURN(const std::string node_id,
                             UnescapeFedText(*id_field));
      PeerState& peer = peers_[node_id];
      const struct {
        const char* key;
        int64_t* i64 = nullptr;
        uint64_t* u64 = nullptr;
      } fields[] = {
          {"hwm", &peer.hwm},
          {"last", &peer.last_epoch},
          {"ingest", &peer.last_ingest_micros},
          {"applied", nullptr, &peer.applied},
          {"dup", nullptr, &peer.duplicates},
          {"reorder", nullptr, &peer.reorders},
          {"late", nullptr, &peer.late_dropped},
          {"decode", nullptr, &peer.decode_failures},
      };
      for (const auto& f : fields) {
        auto field = FieldAfter(line, f.key);
        if (!field) {
          return Status::ParseError(std::string("checkpoint peer field ") +
                                    f.key);
        }
        SQLCM_ASSIGN_OR_RETURN(const int64_t value,
                               ParseInt64(*field, f.key));
        if (f.i64 != nullptr) *f.i64 = value;
        if (f.u64 != nullptr) *f.u64 = static_cast<uint64_t>(value);
      }
      // Incarnation fields are optional: checkpoints written before the
      // nonce existed simply leave them at their zero defaults.
      if (auto inc = FieldAfter(line, "inc")) {
        SQLCM_ASSIGN_OR_RETURN(peer.incarnation, ParseInt64(*inc, "inc"));
      }
      if (auto restarts = FieldAfter(line, "restarts")) {
        SQLCM_ASSIGN_OR_RETURN(const int64_t value,
                               ParseInt64(*restarts, "restarts"));
        peer.restarts = static_cast<uint64_t>(value);
      }
      auto above = FieldAfter(line, "above");
      if (!above) return Status::ParseError("checkpoint peer above field");
      if (*above != "-") {
        std::string_view rest = *above;
        while (!rest.empty()) {
          const size_t bar = rest.find('|');
          SQLCM_ASSIGN_OR_RETURN(
              const int64_t epoch,
              ParseInt64(rest.substr(0, bar), "above epoch"));
          peer.applied_above.insert(epoch);
          if (bar == std::string_view::npos) break;
          rest = rest.substr(bar + 1);
        }
      }
      continue;
    }
    if (line.substr(0, 10) == "state len=") {
      SQLCM_ASSIGN_OR_RETURN(const int64_t len,
                             ParseInt64(line.substr(10), "state length"));
      if (len < 0 || pos + static_cast<size_t>(len) > body.size()) {
        return Status::ParseError("checkpoint state truncated");
      }
      SQLCM_ASSIGN_OR_RETURN(
          const Delta state,
          DecodeDelta(body.substr(pos, static_cast<size_t>(len))));
      const int64_t now_micros = clock_->NowMicros();
      for (const LatSection& section : state.lats) {
        FleetLat* fl = FindLat(section.lat_name);
        if (fl == nullptr) continue;  // LAT retired since the checkpoint
        SQLCM_ASSIGN_OR_RETURN(auto staging,
                               MakeStateStagingTable(*fl->lat));
        for (const DeltaRecord& record : section.records) {
          SQLCM_RETURN_IF_ERROR(staging->Insert(record.cells).status());
        }
        SQLCM_RETURN_IF_ERROR(fl->lat->MergeState(*staging, now_micros));
      }
      pos += static_cast<size_t>(len);
    }
  }
  return Status::OK();
}

std::vector<NodeHealth> FleetAggregator::SnapshotNodes() const {
  const int64_t now_micros = clock_->NowMicros();
  std::vector<NodeHealth> out;
  out.reserve(peers_.size());
  for (const auto& [node_id, peer] : peers_) {
    NodeHealth health;
    health.node_id = node_id;
    health.last_epoch = peer.last_epoch;
    health.hwm = peer.hwm;
    health.lag_micros = now_micros - peer.last_ingest_micros;
    health.applied = peer.applied;
    health.duplicates = peer.duplicates;
    health.reorders = peer.reorders;
    health.late_dropped = peer.late_dropped;
    health.decode_failures = peer.decode_failures;
    health.restarts = peer.restarts;
    health.state = health.lag_micros > options_.dead_after_micros ? "dead"
                   : health.lag_micros > options_.stale_after_micros
                       ? "stale"
                       : "up";
    out.push_back(std::move(health));
  }
  return out;
}

std::vector<FleetLatStats> FleetAggregator::SnapshotLats() const {
  std::vector<FleetLatStats> out;
  out.reserve(lats_.size());
  for (const FleetLat& fl : lats_) {
    FleetLatStats stats;
    stats.lat = fl.lat->name();
    stats.rows = static_cast<int64_t>(fl.lat->size());
    stats.deltas_applied = fl.deltas_applied;
    stats.records_merged = fl.records_merged;
    stats.last_ingest_micros = fl.last_ingest_micros;
    out.push_back(std::move(stats));
  }
  return out;
}

void FleetAggregator::RegisterMetrics(obs::MetricsRegistry* registry) const {
  registry->RegisterCounter("fed.agg.deltas_ingested",
                            &stats_.deltas_ingested);
  registry->RegisterCounter("fed.agg.duplicates", &stats_.duplicates);
  registry->RegisterCounter("fed.agg.reorders", &stats_.reorders);
  registry->RegisterCounter("fed.agg.late_dropped", &stats_.late_dropped);
  registry->RegisterCounter("fed.agg.decode_failures",
                            &stats_.decode_failures);
  registry->RegisterCounter("fed.agg.node_restarts",
                            &stats_.node_restarts);
  registry->RegisterCounter("fed.agg.journal_appends",
                            &stats_.journal_appends);
  registry->RegisterCounter("fed.agg.checkpoints", &stats_.checkpoints);
  registry->RegisterHistogram("fed.agg.ingest", &stats_.ingest_micros);
}

}  // namespace sqlcm::fed
