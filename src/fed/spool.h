// Crash-safe on-disk delta spool (docs/FEDERATION.md).
//
// One file per epoch (`epoch-<16 digits>.delta`), published with the
// atomic tempfile + fsync + rename + parent-directory-fsync primitive, so
// a spooled epoch either exists whole and durable or not at all. Epoch
// files are immutable once published; acknowledgement removes them (unlink
// + directory fsync), and payloads the receiver permanently rejects are
// moved aside into `quarantine/` instead of being retried forever.
//
// The spool is the node's outbox: a crash between publish and send loses
// nothing (the file is still listed on restart), and a crash between send
// and remove merely re-sends — the aggregator's epoch high-water marks make
// the duplicate a no-op.
#ifndef SQLCM_FED_SPOOL_H_
#define SQLCM_FED_SPOOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqlcm::fed {

/// Fault-injection points honoured by the spool (common/fault.h):
/// io_error fails the operation, short_write tears the tempfile,
/// crash_rename leaves a durable tempfile unpublished.
inline constexpr char kFaultFedSpoolWrite[] = "fed.spool.write";
inline constexpr char kFaultFedSpoolRemove[] = "fed.spool.remove";

class DeltaSpool {
 public:
  /// Creates `dir` and `dir/quarantine` as needed and scans for existing
  /// epoch files (recovery after restart).
  static common::Result<std::unique_ptr<DeltaSpool>> Open(std::string dir);

  /// Publishes the payload for `epoch` atomically. An epoch already spooled
  /// is overwritten (only ever happens when re-exporting an epoch whose
  /// earlier Put failed, before anything became eligible to send).
  common::Status Put(int64_t epoch, std::string_view payload);

  /// Spooled epochs, ascending (quarantined epochs excluded).
  std::vector<int64_t> List() const;

  common::Result<std::string> ReadEpoch(int64_t epoch) const;

  /// Acknowledgement: removes the epoch file durably.
  common::Status Remove(int64_t epoch);

  /// Moves the epoch file into quarantine/ (poison delta: the receiver
  /// rejected it permanently, or it exhausted its retry budget).
  common::Status Quarantine(int64_t epoch);

  uint64_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  const std::string& dir() const { return dir_; }

  std::string PathForEpoch(int64_t epoch) const;

 private:
  explicit DeltaSpool(std::string dir);

  std::string dir_;
  std::string quarantine_dir_;
  std::atomic<uint64_t> quarantined_{0};
};

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_SPOOL_H_
