// Staging-table helper shared by the federation node (delta export) and
// aggregator (delta ingest): an in-memory storage::Table with exactly the
// LAT's v2 state-record schema (no trailing timestamp column), suitable for
// Lat::ExportState / Lat::MergeState.
#ifndef SQLCM_FED_STATE_TABLE_H_
#define SQLCM_FED_STATE_TABLE_H_

#include <memory>

#include "common/status.h"
#include "sqlcm/lat.h"
#include "storage/table.h"

namespace sqlcm::fed {

common::Result<std::unique_ptr<storage::Table>> MakeStateStagingTable(
    const cm::Lat& lat);

}  // namespace sqlcm::fed

#endif  // SQLCM_FED_STATE_TABLE_H_
