#include "fed/fleet_views.h"

#include "catalog/schema.h"
#include "engine/database.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace sqlcm::fed {

using common::Row;
using common::Value;

namespace {

catalog::ColumnType TypeCode(char code) {
  switch (code) {
    case 'i': return catalog::ColumnType::kInt;
    case 'd': return catalog::ColumnType::kDouble;
    case 'b': return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

}  // namespace

FleetViews::FleetViews(FleetAggregator* aggregator, engine::Database* db)
    : aggregator_(aggregator), db_(db) {
  if (storage::Table* t = Register(kFleetNodesView,
                                   {{"node_id", 's'},
                                    {"state", 's'},
                                    {"last_epoch", 'i'},
                                    {"hwm", 'i'},
                                    {"lag_micros", 'i'},
                                    {"applied", 'i'},
                                    {"duplicates", 'i'},
                                    {"reorders", 'i'},
                                    {"late_dropped", 'i'},
                                    {"decode_failures", 'i'},
                                    {"restarts", 'i'}},
                                   {"node_id"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshNodes(t);
    });
  }
  if (storage::Table* t = Register(kFleetStatsView,
                                   {{"lat", 's'},
                                    {"rows", 'i'},
                                    {"deltas_applied", 'i'},
                                    {"records_merged", 'i'},
                                    {"last_ingest_micros", 'i'}},
                                   {"lat"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshStats(t);
    });
  }
}

FleetViews::~FleetViews() {
  for (const std::string& name : registered_) {
    (void)db_->catalog()->DropTable(name);
  }
}

storage::Table* FleetViews::Register(
    const std::string& name,
    std::vector<std::pair<std::string, char>> columns,
    const std::vector<std::string>& primary_key) {
  std::vector<catalog::Column> cols;
  cols.reserve(columns.size());
  for (auto& [col_name, code] : columns) {
    cols.push_back({std::move(col_name), TypeCode(code)});
  }
  auto schema =
      catalog::TableSchema::Create(name, std::move(cols), primary_key);
  if (!schema.ok()) return nullptr;
  auto created = db_->catalog()->CreateTable(std::move(*schema));
  if (!created.ok()) return nullptr;  // name owned by a user table
  registered_.push_back(name);
  return *created;
}

void FleetViews::RefreshNodes(storage::Table* table) {
  table->Truncate();
  for (const NodeHealth& h : aggregator_->SnapshotNodes()) {
    Row row;
    row.push_back(Value::String(h.node_id));
    row.push_back(Value::String(h.state));
    row.push_back(Value::Int(h.last_epoch));
    row.push_back(Value::Int(h.hwm));
    row.push_back(Value::Int(h.lag_micros));
    row.push_back(Value::Int(static_cast<int64_t>(h.applied)));
    row.push_back(Value::Int(static_cast<int64_t>(h.duplicates)));
    row.push_back(Value::Int(static_cast<int64_t>(h.reorders)));
    row.push_back(Value::Int(static_cast<int64_t>(h.late_dropped)));
    row.push_back(Value::Int(static_cast<int64_t>(h.decode_failures)));
    row.push_back(Value::Int(static_cast<int64_t>(h.restarts)));
    (void)table->Insert(std::move(row));
  }
}

void FleetViews::RefreshStats(storage::Table* table) {
  table->Truncate();
  for (const FleetLatStats& s : aggregator_->SnapshotLats()) {
    Row row;
    row.push_back(Value::String(s.lat));
    row.push_back(Value::Int(s.rows));
    row.push_back(Value::Int(static_cast<int64_t>(s.deltas_applied)));
    row.push_back(Value::Int(static_cast<int64_t>(s.records_merged)));
    row.push_back(Value::Int(s.last_ingest_micros));
    (void)table->Insert(std::move(row));
  }
}

}  // namespace sqlcm::fed
