#include "fed/state_table.h"

#include "catalog/schema.h"

namespace sqlcm::fed {

using common::ValueKind;

common::Result<std::unique_ptr<storage::Table>> MakeStateStagingTable(
    const cm::Lat& lat) {
  const std::vector<std::string> cols = lat.StateColumnNames();
  const std::vector<ValueKind> kinds = lat.StateColumnKinds();
  std::vector<catalog::Column> columns;
  columns.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    catalog::ColumnType type;
    switch (kinds[i]) {
      case ValueKind::kInt: type = catalog::ColumnType::kInt; break;
      case ValueKind::kDouble: type = catalog::ColumnType::kDouble; break;
      case ValueKind::kBool: type = catalog::ColumnType::kBool; break;
      default: type = catalog::ColumnType::kString; break;
    }
    columns.push_back({cols[i], type});
  }
  SQLCM_ASSIGN_OR_RETURN(
      auto schema,
      catalog::TableSchema::Create(lat.name() + "_fed_state",
                                   std::move(columns), {}));
  return std::make_unique<storage::Table>(0, std::move(schema));
}

}  // namespace sqlcm::fed
