#include "fed/sender.h"

#include <algorithm>

#include "common/fault.h"

namespace sqlcm::fed {

using common::Result;
using common::Status;

DeltaSender::DeltaSender(FedNode* node, DeltaTransport* transport,
                         Options options)
    : node_(node),
      transport_(transport),
      options_(options),
      clock_(options_.clock != nullptr ? options_.clock
                                       : common::SystemClock::Get()),
      jitter_(options_.jitter_seed) {}

int64_t DeltaSender::BackoffMicros(int attempt) {
  const int64_t cap = std::max<int64_t>(options_.backoff_cap_micros, 1);
  int64_t base = options_.backoff_base_micros;
  for (int i = 1; i < attempt && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  // Full jitter: uniform in [base/2, base] keeps retries spread out while
  // preserving the exponential envelope.
  if (base <= 1) return base;
  return base / 2 +
         static_cast<int64_t>(jitter_.Uniform(static_cast<uint64_t>(base / 2) + 1));
}

Result<int> DeltaSender::Pump() {
  const int64_t durable = node_->durable_epoch();
  // Poll: oldest-first eligible epochs, bounded by the queue capacity.
  std::vector<int64_t> queue;
  for (const int64_t epoch : node_->spool()->List()) {
    if (epoch > durable) break;  // eligibility gate (node.h)
    queue.push_back(epoch);
    if (queue.size() >= static_cast<size_t>(options_.queue_capacity)) break;
  }
  int acked = 0;
  for (const int64_t epoch : queue) {
    auto payload = node_->spool()->ReadEpoch(epoch);
    if (!payload.ok()) {
      // Unreadable payload is local corruption, not a transport problem.
      stats_.poison_quarantined.Inc();
      attempts_.erase(epoch);
      SQLCM_RETURN_IF_ERROR(node_->spool()->Quarantine(epoch));
      continue;
    }
    const int64_t start_micros = clock_->NowMicros();
    bool delivered = false;
    for (int attempt = 1; attempt <= options_.max_attempts_per_pump;
         ++attempt) {
      const int total_attempts = ++attempts_[epoch];
      Status status = common::FaultFires(kFaultFedSend)
                          ? Status::IOError(
                                "fault injected: send of epoch " +
                                std::to_string(epoch))
                          : transport_->Deliver(*payload);
      if (status.ok()) {
        delivered = true;
        break;
      }
      if (status.IsParseError() || status.IsInvalidArgument()) {
        // The aggregator rejected the payload itself: poison.
        attempts_.erase(epoch);
        stats_.poison_quarantined.Inc();
        SQLCM_RETURN_IF_ERROR(node_->spool()->Quarantine(epoch));
        break;
      }
      if (total_attempts >= options_.poison_attempts) {
        attempts_.erase(epoch);
        stats_.poison_quarantined.Inc();
        SQLCM_RETURN_IF_ERROR(node_->spool()->Quarantine(epoch));
        break;
      }
      if (attempt == options_.max_attempts_per_pump) {
        stats_.send_exhausted.Inc();
        break;
      }
      stats_.send_retries.Inc();
      clock_->SleepMicros(BackoffMicros(attempt));
    }
    if (!delivered) continue;
    attempts_.erase(epoch);
    if (common::FaultFires(kFaultFedAck)) {
      // Delivered, but the ack is lost: keep the epoch spooled so the next
      // pump re-sends it (the aggregator dedups by epoch).
      stats_.acks_lost.Inc();
      continue;
    }
    SQLCM_RETURN_IF_ERROR(node_->spool()->Remove(epoch));
    stats_.epochs_sent.Inc();
    stats_.drain_micros.Record(clock_->NowMicros() - start_micros);
    ++acked;
  }
  return acked;
}

void DeltaSender::RegisterMetrics(obs::MetricsRegistry* registry) const {
  const std::string base = "fed.sender." + node_->node_id() + ".";
  registry->RegisterCounter(base + "epochs_sent", &stats_.epochs_sent);
  registry->RegisterCounter(base + "send_retries", &stats_.send_retries);
  registry->RegisterCounter(base + "send_exhausted", &stats_.send_exhausted);
  registry->RegisterCounter(base + "poison_quarantined",
                            &stats_.poison_quarantined);
  registry->RegisterCounter(base + "acks_lost", &stats_.acks_lost);
  registry->RegisterHistogram(base + "drain", &stats_.drain_micros);
}

}  // namespace sqlcm::fed
